package core

import (
	"fmt"
	"math/rand"
	"testing"

	"p2psum/internal/bk"
	"p2psum/internal/cells"
	"p2psum/internal/data"
	"p2psum/internal/p2p"
	"p2psum/internal/saintetiq"
	"p2psum/internal/sim"
	"p2psum/internal/topology"
)

// The region-sharding equivalence suite: the parallel event kernel must
// be indistinguishable from the sequential engine — same reports, same
// counters, same trees — at every region count. Two fixtures cover the
// two partition shapes: disjoint stars (every domain in its own region,
// all cross-region traffic barriered) and one large single domain
// (NearestSeeds collapses everything into region 0, pinning the sharded
// kernel's degenerate mode to the sequential behaviour).

// kernelMode configures the sharded kernel's window scheme and overrun
// for an equivalence run; the zero value is PR 7's fixed conservative
// windows.
type kernelMode struct {
	window    sim.WindowMode
	speculate bool
}

// regionNet builds the transport for one equivalence run: the plain
// sequential Network for regions == 0, the sharded kernel otherwise.
func regionNet(t *testing.T, g *topology.Graph, seed int64, regions int, mode kernelMode) *p2p.Network {
	t.Helper()
	if regions == 0 {
		return p2p.NewNetwork(sim.New(), g, seed)
	}
	net, err := p2p.NewShardedNetwork(g, seed, regions)
	if err != nil {
		t.Fatal(err)
	}
	net.SetWindowMode(mode.window)
	net.SetSpeculation(mode.speculate)
	return net
}

// runRegionStarScenario drives a churny multi-domain protocol scenario
// (graceful and silent departures, modification pushes crossing the α
// threshold, rejoins) over 8 star domains and fingerprints the outcome.
func runRegionStarScenario(t *testing.T, regions int, mode kernelMode) dispatchFingerprint {
	t.Helper()
	const clusters, size = 8, 8
	g, hubs := topology.DisjointStars(clusters, size, 0.05)
	net := regionNet(t, g, 11, regions, mode)
	cfg := DefaultConfig()
	cfg.Alpha = 0.3
	cfg.DataLevel = true
	cfg.BK = bk.Medical()
	sys, err := NewSystem(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := cells.NewMapper(cfg.BK, data.PatientSchema())
	if err != nil {
		t.Fatal(err)
	}
	gen := data.NewPatientGenerator(23, nil)
	for i := 0; i < net.Len(); i++ {
		st := cells.NewStore(mapper)
		st.AddRelation(gen.Generate("db", 20))
		tr := saintetiq.New(cfg.BK, cfg.TreeCfg)
		if err := tr.IncorporateStore(st, saintetiq.PeerID(i)); err != nil {
			t.Fatal(err)
		}
		sys.SetLocalTree(p2p.NodeID(i), tr)
	}
	ids := make([]p2p.NodeID, len(hubs))
	for i, h := range hubs {
		ids[i] = p2p.NodeID(h)
	}
	sys.AssignSummaryPeers(ids)
	if regions > 1 {
		// The System wired domain -> region at assignment time: every
		// cluster member shares its hub's region.
		shard := net.Sharded()
		for c := 0; c < clusters; c++ {
			hr := shard.RegionOf(hubs[c])
			for s := 1; s < size; s++ {
				if got := shard.RegionOf(c*size + s); got != hr {
					t.Fatalf("cluster %d node %d in region %d, hub in %d", c, s, got, hr)
				}
			}
		}
	}
	if err := sys.Construct(); err != nil {
		t.Fatal(err)
	}
	net.Settle()

	spoke := func(c, s int) p2p.NodeID { return p2p.NodeID(c*size + s) }
	// One spoke per domain departs gracefully, one silently (§4.3: the
	// next push to it is dropped, the sender re-finds its domain)...
	for c := 0; c < clusters; c++ {
		sys.Leave(spoke(c, 1), true)
		sys.Leave(spoke(c, 2), false)
	}
	net.Settle()
	// ...then settled modification waves push every domain over the
	// α = 0.3 trigger; the triggering wave launches all 8 ring
	// reconciliations inside one Settle window, so sharded runs
	// reconcile the domains concurrently.
	for _, s := range []int{3, 4} {
		for c := 0; c < clusters; c++ {
			sys.MarkModified(spoke(c, s))
		}
		net.Settle()
	}
	// Departed spokes rejoin and a final wave reconciles them back in.
	for c := 0; c < clusters; c++ {
		sys.Join(spoke(c, 1))
		sys.Join(spoke(c, 2))
	}
	net.Settle()
	for _, s := range []int{5, 6} {
		for c := 0; c < clusters; c++ {
			sys.MarkModified(spoke(c, s))
		}
		net.Settle()
	}
	return fingerprintSystem(net, sys)
}

// fingerprintSystem snapshots everything a run reports.
func fingerprintSystem(net *p2p.Network, sys *System) dispatchFingerprint {
	fp := dispatchFingerprint{
		counts:   make(map[string]int64),
		bytes:    make(map[string]int64),
		stats:    sys.Stats(),
		coverage: sys.Coverage(),
	}
	for _, name := range net.Counter().Names() {
		fp.counts[name] = net.Counter().Get(name)
	}
	for _, name := range net.Bytes().Names() {
		fp.bytes[name] = net.Bytes().Get(name)
	}
	for _, r := range sys.ReportAll() {
		fp.reports = append(fp.reports, r.String())
	}
	for _, sp := range sys.SummaryPeers() {
		if tr := sys.Peer(sp).GlobalSummary(); tr != nil { // protocol level has none
			fp.snaps = append(fp.snaps, tr)
		}
	}
	return fp
}

func TestRegionShardingEquivalenceStars(t *testing.T) {
	base := runRegionStarScenario(t, 0, kernelMode{}) // sequential engine
	if base.stats.Reconciliations < 8 {
		t.Fatalf("scenario too tame: only %d reconciliations", base.stats.Reconciliations)
	}
	if base.coverage != 1 {
		t.Fatalf("coverage = %v after rejoins, want 1", base.coverage)
	}
	for _, regions := range []int{1, 2, 4, 8} {
		got := runRegionStarScenario(t, regions, kernelMode{})
		diffFingerprints(t, fmt.Sprintf("regions=%d vs sequential", regions), base, got)
	}
}

// TestRegionShardingEquivalenceModes: dynamic windows and speculative
// overrun are pure wall-clock optimizations — the full protocol outcome
// (reports, counters, trees, coverage) stays bit-identical to the
// sequential engine in every mode at every region count.
func TestRegionShardingEquivalenceModes(t *testing.T) {
	base := runRegionStarScenario(t, 0, kernelMode{}) // sequential engine
	modes := []struct {
		name string
		mode kernelMode
	}{
		{"dynamic", kernelMode{window: sim.WindowDynamic}},
		{"fixed+speculate", kernelMode{speculate: true}},
		{"dynamic+speculate", kernelMode{window: sim.WindowDynamic, speculate: true}},
	}
	for _, m := range modes {
		for _, regions := range []int{2, 8} {
			got := runRegionStarScenario(t, regions, m.mode)
			diffFingerprints(t, fmt.Sprintf("%s regions=%d vs sequential", m.name, regions), base, got)
		}
	}
}

// runRegionDomainScenario drives construct + reconciliation waves over
// one 2000-peer power-law domain at protocol level. With a single
// summary peer, NearestSeeds maps every node to region 0 whatever the
// region count — the sharded kernel must still match the sequential
// engine exactly.
func runRegionDomainScenario(t *testing.T, regions int) dispatchFingerprint {
	t.Helper()
	const peers = 2000
	g, err := topology.BarabasiAlbert(peers, 2, nil, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	net := regionNet(t, g, 7, regions, kernelMode{window: sim.WindowDynamic, speculate: true})
	cfg := DefaultConfig()
	sys, err := NewSystem(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.ElectSummaryPeers(1)
	if err := sys.Construct(); err != nil {
		t.Fatal(err)
	}
	net.Settle()
	for wave := 0; wave < 3; wave++ {
		var ids []p2p.NodeID
		for i := wave; i < peers; i += 5 {
			ids = append(ids, p2p.NodeID(i))
		}
		sys.MarkModifiedAll(ids)
		net.Settle()
	}
	return fingerprintSystem(net, sys)
}

func TestRegionShardingEquivalenceSingleDomain(t *testing.T) {
	if testing.Short() {
		t.Skip("2000-peer fixture")
	}
	base := runRegionDomainScenario(t, 0)
	if base.stats.Reconciliations < 1 {
		t.Fatal("scenario never reconciled")
	}
	for _, regions := range []int{2, 8} {
		got := runRegionDomainScenario(t, regions)
		diffFingerprints(t, fmt.Sprintf("regions=%d vs sequential", regions), base, got)
	}
}
