package core

import (
	"errors"
	"sort"

	"p2psum/internal/p2p"
	"p2psum/internal/topology"
)

// Domain construction (§4.1): summary-peer election, the sumpeer/localsum
// broadcast protocol, and the find walks of the stragglers.

// ElectSummaryPeers picks the k highest-degree nodes as summary peers,
// exploiting peer heterogeneity as §3.1 prescribes for hybrid
// architectures. Ties break on the lower id.
func (s *System) ElectSummaryPeers(k int) []p2p.NodeID {
	if k < 1 {
		k = 1
	}
	if k > s.net.Len() {
		k = s.net.Len()
	}
	ids := make([]p2p.NodeID, s.net.Len())
	for i := range ids {
		ids[i] = p2p.NodeID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := s.net.Degree(ids[i]), s.net.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})
	s.AssignSummaryPeers(ids[:k])
	return s.sps
}

// AssignSummaryPeers designates the given nodes as summary peers and wires
// the long-range links between them ("the summary peer SP sends the request
// to the set of summary peers it knows", §5.2.2).
func (s *System) AssignSummaryPeers(ids []p2p.NodeID) {
	s.sps = append([]p2p.NodeID(nil), ids...)
	sort.Slice(s.sps, func(i, j int) bool { return s.sps[i] < s.sps[j] })
	for _, id := range s.sps {
		p := s.peers[id]
		p.role = RoleSummaryPeer
		p.clearSP()
		// A summary peer claims itself in the liveness view: the assignment
		// is shared configuration, so every process records the same claim
		// and Coverage counts summary peers identically everywhere.
		s.net.Liveness().SetSP(int(id), int(id))
		p.cl = NewCooperationList(s.cfg.Mode)
		p.gs = s.newStore()
		var others []p2p.NodeID
		for _, o := range s.sps {
			if o != id {
				others = append(others, o)
			}
		}
		p.knownSPs = others
	}
	s.wireDispatchGroups()
}

// wireDispatchGroups aligns a sharded-dispatch transport with the domain
// layout: every node maps to the dispatch group of its nearest summary
// peer (ties to the lowest), so one domain's handlers share one serialized
// dispatcher while distinct domains run concurrently — the per-domain
// execution model of §4 ("each domain maintains its own global summary").
// A transport without dispatch groups, or one that has already carried
// traffic, is left untouched; any mapping is semantically valid, the
// domain partition is the one that buys parallelism.
func (s *System) wireDispatchGroups() {
	gt, ok := s.net.(p2p.DispatchGrouper)
	if !ok || gt.DispatchGroups() <= 1 || len(s.sps) == 0 {
		return
	}
	seeds := make([]int, len(s.sps))
	for i, sp := range s.sps {
		seeds[i] = int(sp)
	}
	part := topology.NearestSeeds(gt.Graph(), seeds)
	d := gt.DispatchGroups()
	gt.SetGroupBy(func(id p2p.NodeID) int {
		if part[id] < 0 {
			return int(id) % d // unreachable from every SP: spread evenly
		}
		return part[id] % d
	})
}

// Construct runs the §4.1 domain construction: every summary peer
// broadcasts a sumpeer message with the configured TTL, peers adopt the
// closest summary peer and ship their local summaries, and stragglers that
// no broadcast reached locate a domain with a selective walk. The transport
// is settled to quiescence.
//
// On a transport that hosts only part of the overlay (p2p.Localizer, i.e.
// TCPTransport), Construct drives the local share only: local summary
// peers broadcast, local stragglers walk — every process of the deployment
// calls Construct and each drives its own half, while remote peers react
// purely through their message handlers in their own process.
func (s *System) Construct() error {
	if len(s.sps) == 0 {
		return errors.New("core: no summary peers assigned")
	}
	// Both phases run under Exec so driver-side state writes (seenRounds,
	// walk adoptions) are serialized with handler-side mutation on
	// concurrent transports.
	s.net.Exec(func() {
		s.round++
		for _, id := range s.sps {
			if p2p.IsLocal(s.net, id) {
				s.broadcastSumpeer(id)
			}
		}
	})
	s.net.Settle()
	s.net.Exec(func() {
		// Stragglers: peers outside every broadcast radius use find.
		for _, p := range s.peers {
			if p.role == RoleClient && p.curSP() < 0 && s.net.Online(p.id) && p2p.IsLocal(s.net, p.id) {
				s.findDomain(p)
			}
		}
	})
	s.net.Settle()
	s.built = true
	s.armGossip()
	return nil
}

// broadcastSumpeer floods the announcement from the summary peer.
func (s *System) broadcastSumpeer(spID p2p.NodeID) {
	sp := s.peers[spID]
	sp.seenRounds[sumpeerKey{spID, s.round}] = true
	for _, nb := range s.net.Neighbors(spID) {
		s.net.SendNew(MsgSumpeer, spID, nb, s.cfg.ConstructionTTL-1,
			SumpeerPayload{SP: spID, Round: s.round, Hops: 1})
	}
}

// findDomain runs the selective walk of the find protocol and adopts the
// summary peer of the first partner reached.
func (s *System) findDomain(p *Peer) {
	s.addStat(func(st *Stats) { st.FindWalks++ })
	// The accept callback reads other peers' domain pointers: on a
	// sharded-dispatch transport those peers' handlers may be mutating
	// them concurrently (sp is atomic for exactly this read).
	res := s.net.SelectiveWalk(MsgFind, p.id, s.cfg.FindBudget, func(id p2p.NodeID) bool {
		if id == p.id {
			return false
		}
		o := s.peers[id]
		if o.role == RoleSummaryPeer {
			return true
		}
		osp := o.curSP()
		return osp >= 0 && s.net.Online(osp)
	})
	if res.Found < 0 {
		return
	}
	target := s.peers[res.Found]
	spID := target.id
	if target.role == RoleClient {
		spID = target.curSP()
		if spID < 0 {
			return // the partner detached while the walk was in flight
		}
	}
	p.adopt(spID, s.hopsTo(p.id, spID))
}

// hopsTo estimates the hop distance between two nodes (used for the
// closer-summary-peer comparison; the paper notes latency or any other
// metric works).
func (s *System) hopsTo(a, b p2p.NodeID) int {
	if d, ok := s.net.HopsWithin(a, 6)[b]; ok {
		return d
	}
	return 7
}

// adopt makes p a partner of spID, shipping its local summary.
func (p *Peer) adopt(spID p2p.NodeID, hops int) {
	p.setSP(spID, hops)
	payload := LocalsumPayload{Rejoin: p.sys.built}
	if p.sys.cfg.DataLevel && p.local != nil {
		payload.Tree = p.local.Clone()
	}
	p.sys.net.SendNew(MsgLocalsum, p.id, spID, 0, payload)
}

// onSumpeer implements the §4.1 construction rules at a receiving peer.
func (p *Peer) onSumpeer(msg *p2p.Message) {
	pl := msg.Payload.(SumpeerPayload)
	key := sumpeerKey{pl.SP, pl.Round}
	if p.seenRounds[key] {
		return // duplicate broadcast copy
	}
	p.seenRounds[key] = true

	if p.role == RoleClient {
		cur := p.curSP()
		switch {
		case cur < 0:
			// First sumpeer message: become a partner.
			p.adopt(pl.SP, pl.Hops)
		case cur != pl.SP && pl.Hops < p.curSPHops():
			// A strictly closer summary peer: drop the old partnership.
			p.sys.net.SendNew(MsgDrop, p.id, cur, 0, nil)
			p.adopt(pl.SP, pl.Hops)
		}
	}

	// Forward the broadcast while TTL remains.
	if msg.TTL > 0 {
		fwd := SumpeerPayload{SP: pl.SP, Round: pl.Round, Hops: pl.Hops + 1}
		for _, nb := range p.sys.net.Neighbors(p.id) {
			if nb != msg.From {
				p.sys.net.SendNew(MsgSumpeer, p.id, nb, msg.TTL-1, fwd)
			}
		}
	}
}

// onLocalsum registers (or refreshes) a partner at the summary peer.
func (p *Peer) onLocalsum(msg *p2p.Message) {
	if p.role != RoleSummaryPeer {
		return
	}
	pl := msg.Payload.(LocalsumPayload)
	if !pl.Rejoin || p.sys.cfg.MergeOnJoin {
		// Construction-time localsum (or the merge-on-join ablation):
		// merge immediately, descriptions are fresh. The store routes the
		// merge to the owning shards, each under its own lock.
		if p.sys.cfg.DataLevel && pl.Tree != nil {
			if err := p.gs.Merge(pl.Tree); err != nil {
				// Incompatible vocabulary: register the partner anyway but
				// flag it for the next pull.
				p.cl.Set(msg.From, Stale)
				return
			}
		}
		p.cl.Set(msg.From, Fresh)
		return
	}
	// Later join (§4.3): record the partner but defer the merge to the
	// next reconciliation; value 1 marks the need to pull it.
	p.cl.Set(msg.From, Stale)
	p.maybeReconcile()
}
