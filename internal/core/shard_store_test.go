package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"p2psum/internal/bk"
	"p2psum/internal/cells"
	"p2psum/internal/data"
	"p2psum/internal/p2p"
	"p2psum/internal/query"
	"p2psum/internal/saintetiq"
	"p2psum/internal/sim"
)

// newDataSystem builds a data-level system over n peers with seeded local
// summaries and the given store shard count.
func newDataSystem(t *testing.T, n int, seed int64, shards int) (*System, *sim.Engine) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DataLevel = true
	cfg.BK = bk.Medical()
	cfg.Shards = shards
	sys, e := newTestSystem(t, n, seed, cfg)
	mapper, err := cells.NewMapper(cfg.BK, data.PatientSchema())
	if err != nil {
		t.Fatal(err)
	}
	gen := data.NewPatientGenerator(seed+7, nil)
	for i := 0; i < n; i++ {
		st := cells.NewStore(mapper)
		st.AddRelation(gen.Generate("db", 35))
		tr := saintetiq.New(cfg.BK, cfg.TreeCfg)
		if err := tr.IncorporateStore(st, saintetiq.PeerID(i)); err != nil {
			t.Fatal(err)
		}
		sys.SetLocalTree(p2p.NodeID(i), tr)
	}
	return sys, e
}

// TestShardedSystemEquivalence: the same protocol run over the same data
// yields layout-invariant domain state whatever the store shard count —
// identical protocol stats, leaf/weight report counters and fanned-out
// query results, through construction and a full reconciliation.
func TestShardedSystemEquivalence(t *testing.T) {
	const n, seed = 28, 21
	build := func(shards int) (*System, *sim.Engine) {
		sys, e := newDataSystem(t, n, seed, shards)
		sys.ElectSummaryPeers(1)
		if err := sys.Construct(); err != nil {
			t.Fatal(err)
		}
		// Trigger a full reconciliation so the per-shard swap path runs.
		for _, p := range sys.Peer(sys.SummaryPeers()[0]).CooperationList().Partners() {
			sys.MarkModified(p)
		}
		e.Run()
		return sys, e
	}
	base, _ := build(1)
	baseSP := base.SummaryPeers()[0]
	baseReport, err := base.Report(baseSP)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats().Reconciliations == 0 {
		t.Fatal("baseline run reconciled nothing")
	}

	q, err := query.Reformulate(bk.Medical(), []string{"age", "bmi"},
		[]query.Predicate{{Attr: "age", Op: query.Lt, Num: 40}})
	if err != nil {
		t.Fatal(err)
	}
	baseAns, err := query.AnswerStore(base.Peer(baseSP).SummaryStore(), q)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys, _ := build(shards)
			if sys.Stats() != base.Stats() {
				t.Errorf("protocol stats diverged: %+v vs %+v", sys.Stats(), base.Stats())
			}
			sp := sys.SummaryPeers()[0]
			r, err := sys.Report(sp)
			if err != nil {
				t.Fatal(err)
			}
			if r.SummaryShards != shards {
				t.Errorf("report shards = %d, want %d", r.SummaryShards, shards)
			}
			if r.SummaryLeaves != baseReport.SummaryLeaves {
				t.Errorf("leaves = %d, single-tree run has %d", r.SummaryLeaves, baseReport.SummaryLeaves)
			}
			if d := r.SummaryWeight - baseReport.SummaryWeight; d > 1e-6 || d < -1e-6 {
				t.Errorf("weight = %g, single-tree run has %g", r.SummaryWeight, baseReport.SummaryWeight)
			}
			if r.Partners != baseReport.Partners || r.StaleFraction != baseReport.StaleFraction {
				t.Errorf("membership state diverged: %+v vs %+v", r, baseReport)
			}
			// The sharded store answers queries identically on the
			// structure-invariant outputs.
			ans, err := query.AnswerStore(sys.Peer(sp).SummaryStore(), q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ans.Peers, baseAns.Peers) {
				t.Errorf("query peers %v, single-tree run %v", ans.Peers, baseAns.Peers)
			}
			if d := ans.Weight - baseAns.Weight; d > 1e-6 || d < -1e-6 {
				t.Errorf("query weight %g, single-tree run %g", ans.Weight, baseAns.Weight)
			}
			// And the snapshot agrees leaf-for-leaf with the single tree.
			if !sys.Peer(sp).GlobalSummary().LeavesEqual(base.Peer(baseSP).GlobalSummary()) {
				t.Error("sharded snapshot leaves differ from the single-tree summary")
			}
		})
	}
}

// TestShardedReportString: a multi-shard domain advertises its shard count
// in the report line.
func TestShardedReportString(t *testing.T) {
	sys, _ := newDataSystem(t, 16, 5, 4)
	sys.ElectSummaryPeers(1)
	if err := sys.Construct(); err != nil {
		t.Fatal(err)
	}
	r, err := sys.Report(sys.SummaryPeers()[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.SummaryShards != 4 {
		t.Fatalf("SummaryShards = %d", r.SummaryShards)
	}
	if s := r.String(); !strings.Contains(s, "shards=4") {
		t.Errorf("report %q does not mention shards", s)
	}
}
