package saintetiq

// Operator selection (Cobweb, following Fisher 1987 as §3.2.2 prescribes):
// when a new cell reaches an internal node, the four restructuring options
// are scored with a category-utility partition score generalized to weighted
// fuzzy descriptor distributions, and the best one is applied.
//
//	CU({z_1..z_K}) = (1/K) Σ_k P(z_k) Σ_a Σ_d [ P(d|z_k)² − P(d|parent)² ]
//
// where P(d|z) is the weighted frequency of descriptor d among the cells
// below z. Higher CU means the partition predicts descriptors better than
// the parent alone.

type operator int

const (
	opHost operator = iota
	opCreate
	opMerge
	opSplit
)

// String names the operator (useful in traces and tests).
func (o operator) String() string {
	switch o {
	case opHost:
		return "host"
	case opCreate:
		return "create"
	case opMerge:
		return "merge"
	case opSplit:
		return "split"
	default:
		return "?"
	}
}

// nodeStat is the per-candidate view used during scoring: the real children
// plus the hypothetical placement of the new contribution.
type nodeStat struct {
	count  float64
	counts [][]float64
}

func statOf(n *Node) nodeStat { return nodeStat{count: n.count, counts: n.counts} }

// statPlus returns the node's stat with the contribution folded in
// (without mutating the node).
func (t *Tree) statPlus(n *Node, con *contribution) nodeStat {
	counts := make([][]float64, len(t.attrs))
	for a := range t.attrs {
		counts[a] = append([]float64(nil), n.counts[a]...)
		counts[a][con.labels[a]] += con.count
	}
	return nodeStat{count: n.count + con.count, counts: counts}
}

// statOfContribution views the contribution itself as a singleton class.
func (t *Tree) statOfContribution(con *contribution) nodeStat {
	counts := make([][]float64, len(t.attrs))
	for a := range t.attrs {
		counts[a] = make([]float64, len(t.attrs[a].labels))
		counts[a][con.labels[a]] = con.count
	}
	return nodeStat{count: con.count, counts: counts}
}

// intraScore computes Σ_a Σ_d P(d|z)² weighted by P(z) = z.count / total.
func intraScore(s nodeStat, total float64) float64 {
	if s.count <= 0 || total <= 0 {
		return 0
	}
	pz := s.count / total
	var sum float64
	for a := range s.counts {
		for _, c := range s.counts[a] {
			if c > 0 {
				p := c / s.count
				sum += p * p
			}
		}
	}
	return pz * sum
}

// partitionScore computes CU for a candidate partition given the parent's
// (already updated) totals. The parent term Σ P(d|parent)² is constant
// across candidates at a given node, so comparisons only need the intra-
// class part normalized by K; we keep the full formula for interpretability.
func (t *Tree) partitionScore(parentStat nodeStat, children []nodeStat) float64 {
	k := float64(len(children))
	if k == 0 {
		return 0
	}
	total := parentStat.count
	var intra float64
	for _, c := range children {
		intra += intraScore(c, total)
	}
	var parent float64
	for a := range parentStat.counts {
		for _, c := range parentStat.counts[a] {
			if c > 0 {
				p := c / total
				parent += p * p
			}
		}
	}
	return (intra - parent) / k
}

// chooseOperator scores host/create/merge/split for the contribution at node
// n (whose aggregates already include it) and returns the chosen operator
// plus the indexes of the children involved (best, second). Split is only
// offered for internal best children and while the per-placement split
// budget lasts. Ties break deterministically in the order host, create,
// merge, split.
func (t *Tree) chooseOperator(n *Node, con *contribution, round int) (op operator, best, second int) {
	parent := statOf(n) // n already includes the contribution
	k := len(n.children)

	// Baseline child stats.
	base := make([]nodeStat, k)
	for i, c := range n.children {
		base[i] = statOf(c)
	}

	// Host candidates: CU with the contribution added to child i.
	best, second = -1, -1
	var bestScore, secondScore float64
	candidate := make([]nodeStat, k)
	copy(candidate, base)
	for i, c := range n.children {
		candidate[i] = t.statPlus(c, con)
		score := t.partitionScore(parent, candidate)
		candidate[i] = base[i]
		if best < 0 || score > bestScore {
			second, secondScore = best, bestScore
			best, bestScore = i, score
		} else if second < 0 || score > secondScore {
			second, secondScore = i, score
		}
	}

	// Create candidate: the contribution as a new singleton child.
	createScore := t.partitionScore(parent, append(append([]nodeStat(nil), base...), t.statOfContribution(con)))

	op, bestOp := opHost, bestScore
	if createScore > bestOp {
		op, bestOp = opCreate, createScore
	}

	// Merge candidate: fuse best and second, host into the fusion.
	if k >= 3 && second >= 0 {
		merged := t.statPlus(mergedStat(base[best], base[second]), con)
		var rest []nodeStat
		for i := range base {
			if i != best && i != second {
				rest = append(rest, base[i])
			}
		}
		mergeScore := t.partitionScore(parent, append(rest, merged))
		if mergeScore > bestOp {
			op, bestOp = opMerge, mergeScore
		}
	}

	// Split candidate: replace the best child by its children.
	if best >= 0 && !n.children[best].IsLeaf() && round < t.cfg.MaxSplitRounds {
		var split []nodeStat
		for i := range base {
			if i != best {
				split = append(split, base[i])
			}
		}
		for _, gc := range n.children[best].children {
			split = append(split, statOf(gc))
		}
		// Score the split partition with the contribution hosted into its
		// best grandchild (approximated by the singleton-create view, which
		// lower-bounds the split benefit and keeps the evaluation O(K)).
		splitScore := t.partitionScore(parent, append(split, t.statOfContribution(con)))
		if splitScore > bestOp {
			op = opSplit
		}
	}

	if op == opMerge || op == opHost {
		return op, best, second
	}
	return op, best, second
}

// mergedStat is the hypothetical fusion of two child stats.
func mergedStat(a, b nodeStat) *Node {
	// Reuse the contribution plumbing via a throwaway node-like holder.
	n := &Node{count: a.count + b.count, counts: make([][]float64, len(a.counts))}
	for i := range a.counts {
		n.counts[i] = make([]float64, len(a.counts[i]))
		for j := range a.counts[i] {
			n.counts[i][j] = a.counts[i][j] + b.counts[i][j]
		}
	}
	return n
}

// closestPair returns the pair of children of n whose fusion maximizes the
// partition score (used by the arity cap).
func (t *Tree) closestPair(n *Node) (int, int) {
	parent := statOf(n)
	base := make([]nodeStat, len(n.children))
	for i, c := range n.children {
		base[i] = statOf(c)
	}
	bi, bj, bestScore := 0, 1, 0.0
	first := true
	for i := 0; i < len(base); i++ {
		for j := i + 1; j < len(base); j++ {
			var cand []nodeStat
			for k := range base {
				if k != i && k != j {
					cand = append(cand, base[k])
				}
			}
			cand = append(cand, statOf(mergedStat(base[i], base[j])))
			score := t.partitionScore(parent, cand)
			if first || score > bestScore {
				bi, bj, bestScore, first = i, j, score, false
			}
		}
	}
	return bi, bj
}
