package saintetiq

import (
	"fmt"

	"p2psum/internal/cells"
)

// Merging of summary hierarchies (CIKM'07 [27], paper §6.1.1): the leaves of
// the source hierarchy are incorporated into the destination using the
// regular summarization service, so the complexity of Merging(S1, S2)
// depends on the number of leaves of S1 — which is bounded by the BK grid —
// and not on the number of raw tuples.

// CompatibleWith reports whether two trees share the same attribute
// vocabularies (a Common Background Knowledge), which merging requires.
func (t *Tree) CompatibleWith(o *Tree) error {
	if len(t.attrs) != len(o.attrs) {
		return fmt.Errorf("saintetiq: merging %d-attr tree with %d-attr tree", len(o.attrs), len(t.attrs))
	}
	for a := range t.attrs {
		if t.attrs[a].name != o.attrs[a].name {
			return fmt.Errorf("saintetiq: attribute %d is %q vs %q", a, t.attrs[a].name, o.attrs[a].name)
		}
		if len(t.attrs[a].labels) != len(o.attrs[a].labels) {
			return fmt.Errorf("saintetiq: attribute %q has %d vs %d labels", t.attrs[a].name, len(t.attrs[a].labels), len(o.attrs[a].labels))
		}
		for j := range t.attrs[a].labels {
			if t.attrs[a].labels[j] != o.attrs[a].labels[j] {
				return fmt.Errorf("saintetiq: attribute %q label %d is %q vs %q", t.attrs[a].name, j, t.attrs[a].labels[j], o.attrs[a].labels[j])
			}
		}
	}
	return nil
}

// LeafCell exports a leaf as a standalone cell plus its peer extent,
// suitable for re-incorporation elsewhere.
func (t *Tree) LeafCell(n *Node) (*cells.Cell, []PeerID) {
	c := &cells.Cell{
		Labels:   make([]string, len(t.attrs)),
		Grades:   make([]float64, len(t.attrs)),
		Count:    n.count,
		Measures: make([]cells.Measure, len(t.attrs)),
	}
	for a := range t.attrs {
		idx := n.LabelIndexes(a)
		// A leaf has exactly one descriptor per attribute by construction.
		j := idx[0]
		c.Labels[a] = t.attrs[a].labels[j]
		c.Grades[a] = n.grades[a][j]
		c.Measures[a] = n.measures[a]
	}
	return c, n.PeerIDs()
}

// Merge incorporates every leaf of src into t (Merging(src, t)). Peer
// extents are preserved. src is not modified.
func (t *Tree) Merge(src *Tree) error {
	return t.MergeLeaves(src, src.Leaves())
}

// NewLike creates an empty hierarchy sharing t's configuration and attribute
// vocabulary (the Common Background Knowledge). It is the seed operation of
// shard splitting: a summary store carves a tree into shards by incorporating
// leaf subsets into NewLike trees.
func (t *Tree) NewLike() *Tree {
	out := &Tree{cfg: t.cfg, attrs: t.attrs, byKey: make(map[string]*Node)}
	out.root = out.newNode("")
	return out
}

// MergeLeaves incorporates the given leaves of src into t (Merging
// restricted to a leaf subset). Peer extents are preserved; src is not
// modified. This is the shard-split/merge primitive: a sharded store
// buckets src's leaves by owning shard in one pass and merges each bucket
// independently — disjoint buckets can merge concurrently into different
// destinations.
func (t *Tree) MergeLeaves(src *Tree, leaves []*Node) error {
	if err := t.CompatibleWith(src); err != nil {
		return err
	}
	for _, leaf := range leaves {
		c, peers := src.LeafCell(leaf)
		if err := t.Incorporate(c, peers...); err != nil {
			return err
		}
	}
	return nil
}

// LeavesEqual reports whether two hierarchies describe the same grid cells
// with the same aggregates: identical leaf key sets and, per leaf, equal
// tuple weight, descriptor grades and peer extents (weights and grades are
// compared with a small relative tolerance — the same contributions summed
// in a different order may differ in the last ulp). Structure above the
// leaves is ignored, so two trees built by different insertion orders still
// compare equal when they summarize the same data. Reconciliation uses it
// as the per-shard delta test: a shard whose leaves did not change keeps its
// current tree instead of being replaced.
func (t *Tree) LeavesEqual(o *Tree) bool {
	if len(t.byKey) != len(o.byKey) {
		return false
	}
	if err := t.CompatibleWith(o); err != nil {
		return false
	}
	const tol = 1e-9
	for key, a := range t.byKey {
		b, ok := o.byKey[key]
		if !ok {
			return false
		}
		if !approxEq(a.count, b.count, tol) || len(a.peers) != len(b.peers) {
			return false
		}
		for p := range a.peers {
			if _, ok := b.peers[p]; !ok {
				return false
			}
		}
		for at := range t.attrs {
			for j := range t.attrs[at].labels {
				if !approxEq(a.counts[at][j], b.counts[at][j], tol) ||
					!approxEq(a.grades[at][j], b.grades[at][j], tol) {
					return false
				}
			}
		}
	}
	return true
}

// Clone deep-copies the hierarchy.
func (t *Tree) Clone() *Tree {
	out := &Tree{
		cfg:    t.cfg,
		attrs:  t.attrs, // immutable after New
		byKey:  make(map[string]*Node, len(t.byKey)),
		nextID: t.nextID,
		stats:  t.stats,
		epoch:  t.epoch,
	}
	out.root = out.cloneNode(t.root, nil)
	return out
}

func (t *Tree) cloneNode(n *Node, parent *Node) *Node {
	c := &Node{
		id:       n.id,
		key:      n.key,
		count:    n.count,
		counts:   make([][]float64, len(n.counts)),
		grades:   make([][]float64, len(n.grades)),
		measures: append([]cells.Measure(nil), n.measures...),
		peers:    make(map[PeerID]struct{}, len(n.peers)),
		parent:   parent,
	}
	for a := range n.counts {
		c.counts[a] = append([]float64(nil), n.counts[a]...)
		c.grades[a] = append([]float64(nil), n.grades[a]...)
	}
	for p := range n.peers {
		c.peers[p] = struct{}{}
	}
	if c.key != "" {
		t.byKey[c.key] = c
	}
	c.children = make([]*Node, len(n.children))
	for i, ch := range n.children {
		c.children[i] = t.cloneNode(ch, c)
	}
	return c
}

// Empty reports whether the hierarchy holds no data yet.
func (t *Tree) Empty() bool { return len(t.byKey) == 0 }
