package saintetiq

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"p2psum/internal/bk"
	"p2psum/internal/cells"
	"p2psum/internal/data"
)

// Config tunes the clustering process.
type Config struct {
	// MaxChildren caps node arity; when a create pushes a node beyond the
	// cap, the two closest children are merged. Zero means unlimited
	// (classic Cobweb behaviour).
	MaxChildren int
	// MaxSplitRounds bounds consecutive split applications while placing a
	// single cell at one node, preventing split/merge oscillation.
	MaxSplitRounds int
}

// DefaultConfig mirrors the paper's setting: a modest arity (the storage
// model of §6.1.1 speaks of a B-arity tree) and bounded restructuring.
func DefaultConfig() Config {
	return Config{MaxChildren: 6, MaxSplitRounds: 2}
}

// OpStats counts the structural operators applied so far; the maintenance
// layer watches them to detect hierarchy stabilization (§4.2.1).
type OpStats struct {
	Incorporations int // cells incorporated (including fast-path hits)
	FastPath       int // incorporations resolved by an existing leaf
	Hosts          int
	Creates        int
	Merges         int
	Splits         int
}

// Structural returns the number of tree-shape-changing operations.
func (s OpStats) Structural() int { return s.Creates + s.Merges + s.Splits }

type attrInfo struct {
	name    string
	labels  []string
	indexOf map[string]int
	numeric bool
}

// Tree is a SaintEtiQ summary hierarchy.
type Tree struct {
	cfg    Config
	attrs  []attrInfo
	root   *Node
	byKey  map[string]*Node // leaf per cell key
	nextID int
	stats  OpStats
	epoch  int // bumped by every structural change; used for cheap change detection
}

// New creates an empty hierarchy for the given background knowledge.
func New(b *bk.BK, cfg Config) *Tree {
	t := &Tree{cfg: cfg, byKey: make(map[string]*Node)}
	for _, a := range b.Attrs() {
		labels := a.Labels()
		info := attrInfo{
			name:    a.Name,
			labels:  append([]string(nil), labels...),
			indexOf: make(map[string]int, len(labels)),
			numeric: a.Kind == data.Numeric,
		}
		for j, lab := range labels {
			info.indexOf[lab] = j
		}
		t.attrs = append(t.attrs, info)
	}
	t.root = t.newNode("")
	return t
}

func (t *Tree) newNode(key string) *Node {
	n := &Node{
		id:       t.nextID,
		key:      key,
		counts:   make([][]float64, len(t.attrs)),
		grades:   make([][]float64, len(t.attrs)),
		measures: make([]cells.Measure, len(t.attrs)),
		peers:    make(map[PeerID]struct{}),
	}
	for a := range t.attrs {
		n.counts[a] = make([]float64, len(t.attrs[a].labels))
		n.grades[a] = make([]float64, len(t.attrs[a].labels))
		n.measures[a] = cells.NewMeasure()
	}
	t.nextID++
	return n
}

// NumAttrs returns the number of summarized attributes.
func (t *Tree) NumAttrs() int { return len(t.attrs) }

// AttrName returns the name of attribute a.
func (t *Tree) AttrName(a int) string { return t.attrs[a].name }

// AttrIndex returns the position of the named attribute, or -1.
func (t *Tree) AttrIndex(name string) int {
	for i, a := range t.attrs {
		if a.name == name {
			return i
		}
	}
	return -1
}

// AttrLabels returns the canonical label vocabulary of attribute a.
func (t *Tree) AttrLabels(a int) []string { return t.attrs[a].labels }

// LabelIndex returns the canonical index of a label on attribute a, or -1.
func (t *Tree) LabelIndex(a int, label string) int {
	if j, ok := t.attrs[a].indexOf[label]; ok {
		return j
	}
	return -1
}

// Label returns the label string at canonical index j of attribute a.
func (t *Tree) Label(a, j int) string { return t.attrs[a].labels[j] }

// Root returns the most general summary.
func (t *Tree) Root() *Node { return t.root }

// Stats returns the operator counters.
func (t *Tree) Stats() OpStats { return t.stats }

// Epoch returns a counter bumped by every structural change; equal epochs
// guarantee an unchanged tree shape. The maintenance layer uses it to decide
// whether a local summary is "enough modified" to push (§4.2.1).
func (t *Tree) Epoch() int { return t.epoch }

// LeafCount returns the number of leaves (grid cells) in the hierarchy.
func (t *Tree) LeafCount() int { return len(t.byKey) }

// Leaf returns the leaf holding the given cell key, or nil.
func (t *Tree) Leaf(key string) *Node { return t.byKey[key] }

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int {
	n := 0
	t.Walk(func(*Node) bool { n++; return true })
	return n
}

// Depth returns the maximum leaf depth.
func (t *Tree) Depth() int {
	deepest := 0
	t.Walk(func(n *Node) bool {
		if n.IsLeaf() {
			if d := n.Depth(); d > deepest {
				deepest = d
			}
		}
		return true
	})
	return deepest
}

// AvgBranching returns the average arity of internal nodes (the B of the
// §6.1.1 storage model).
func (t *Tree) AvgBranching() float64 {
	internal, edges := 0, 0
	t.Walk(func(n *Node) bool {
		if !n.IsLeaf() && len(n.children) > 0 {
			internal++
			edges += len(n.children)
		}
		return true
	})
	if internal == 0 {
		return 0
	}
	return float64(edges) / float64(internal)
}

// Walk visits nodes preorder; the visitor returns false to skip a subtree.
func (t *Tree) Walk(fn func(*Node) bool) {
	var rec func(*Node)
	rec = func(n *Node) {
		if !fn(n) {
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}

// Leaves returns the leaves sorted by cell key.
func (t *Tree) Leaves() []*Node {
	keys := make([]string, 0, len(t.byKey))
	for k := range t.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Node, len(keys))
	for i, k := range keys {
		out[i] = t.byKey[k]
	}
	return out
}

// contributionOf converts a cell (with provenance) into the incremental
// update its insertion applies.
func (t *Tree) contributionOf(c *cells.Cell, peers []PeerID) (*contribution, error) {
	if len(c.Labels) != len(t.attrs) {
		return nil, fmt.Errorf("saintetiq: cell has %d labels, tree has %d attributes", len(c.Labels), len(t.attrs))
	}
	con := &contribution{
		count:    c.Count,
		labels:   make([]int, len(t.attrs)),
		grades:   append([]float64(nil), c.Grades...),
		measures: append([]cells.Measure(nil), c.Measures...),
		peers:    peers,
	}
	for a, lab := range c.Labels {
		j := t.LabelIndex(a, lab)
		if j < 0 {
			return nil, fmt.Errorf("saintetiq: label %q unknown on attribute %q", lab, t.attrs[a].name)
		}
		con.labels[a] = j
	}
	return con, nil
}

// Incorporate inserts one grid cell (tagged with the owning peers) into the
// hierarchy. This is the O(K)-amortized online operation of §3.2.3.
func (t *Tree) Incorporate(c *cells.Cell, peers ...PeerID) error {
	con, err := t.contributionOf(c, peers)
	if err != nil {
		return err
	}
	t.stats.Incorporations++

	key := c.Key()
	if leaf, ok := t.byKey[key]; ok {
		// Stabilized fast path: the combination exists; sorting the cell
		// into the tree is a pure walk (no structural operator).
		t.stats.FastPath++
		leaf.apply(con)
		for p := leaf.parent; p != nil; p = p.parent {
			p.apply(con)
		}
		return nil
	}

	if len(t.byKey) == 0 {
		// First cell: the root describes exactly it, and the leaf hangs
		// directly below the root.
		t.root.apply(con)
		leaf := t.leafFor(key, con)
		t.attach(t.root, leaf)
		t.stats.Creates++
		return nil
	}
	t.insert(t.root, key, con)
	return nil
}

// IncorporateStore folds a whole mapped store in (leaf order is
// deterministic).
func (t *Tree) IncorporateStore(s *cells.Store, peers ...PeerID) error {
	for _, c := range s.Cells() {
		if err := t.Incorporate(c, peers...); err != nil {
			return err
		}
	}
	return nil
}

// leafFor builds a new leaf node carrying exactly one contribution.
func (t *Tree) leafFor(key string, con *contribution) *Node {
	leaf := t.newNode(key)
	leaf.apply(con)
	t.byKey[key] = leaf
	return leaf
}

func (t *Tree) attach(parent, child *Node) {
	child.parent = parent
	parent.children = append(parent.children, child)
	t.epoch++
}

func (t *Tree) detach(parent, child *Node) {
	for i, c := range parent.children {
		if c == child {
			parent.children = append(parent.children[:i], parent.children[i+1:]...)
			child.parent = nil
			t.epoch++
			return
		}
	}
}

// insert places a new-key cell below node n (n's aggregates are updated
// here). n must be internal.
func (t *Tree) insert(n *Node, key string, con *contribution) {
	n.apply(con)

	if len(n.children) == 0 {
		// Degenerate internal node (can appear transiently after splits).
		t.attach(n, t.leafFor(key, con))
		t.stats.Creates++
		return
	}

	for round := 0; ; round++ {
		op, best, second := t.chooseOperator(n, con, round)
		switch op {
		case opHost:
			child := n.children[best]
			if child.IsLeaf() {
				// Hosting into a leaf with a different key demotes the leaf:
				// it becomes an internal node over {old cell, new cell}.
				t.demoteLeaf(child, key, con)
				t.stats.Hosts++
				return
			}
			t.stats.Hosts++
			t.insert(child, key, con)
			return
		case opCreate:
			t.attach(n, t.leafFor(key, con))
			t.stats.Creates++
			t.enforceArity(n)
			return
		case opMerge:
			m := t.mergeChildren(n, best, second)
			t.stats.Merges++
			t.insert(m, key, con)
			return
		case opSplit:
			t.splitChild(n, best)
			t.stats.Splits++
			// Re-evaluate against the widened partition.
			continue
		default:
			panic("saintetiq: unknown operator")
		}
	}
}

// demoteLeaf turns leaf into an internal node holding a copy of its old cell
// and the new cell as children.
func (t *Tree) demoteLeaf(leaf *Node, key string, con *contribution) {
	oldLeaf := t.newNode(leaf.key)
	oldLeaf.count = leaf.count
	for a := range t.attrs {
		copy(oldLeaf.counts[a], leaf.counts[a])
		copy(oldLeaf.grades[a], leaf.grades[a])
		oldLeaf.measures[a] = leaf.measures[a]
	}
	for p := range leaf.peers {
		oldLeaf.peers[p] = struct{}{}
	}
	t.byKey[oldLeaf.key] = oldLeaf

	leaf.key = "" // becomes internal
	leaf.apply(con)
	t.attach(leaf, oldLeaf)
	t.attach(leaf, t.leafFor(key, con))
}

// mergeChildren replaces children i and j of n by a single node covering
// both (the Cobweb merge operator).
func (t *Tree) mergeChildren(n *Node, i, j int) *Node {
	a, b := n.children[i], n.children[j]
	m := t.newNode("")
	m.count = a.count + b.count
	for at := range t.attrs {
		for l := range m.counts[at] {
			m.counts[at][l] = a.counts[at][l] + b.counts[at][l]
			m.grades[at][l] = max(a.grades[at][l], b.grades[at][l])
		}
		m.measures[at] = a.measures[at]
		m.measures[at].Merge(b.measures[at])
	}
	for p := range a.peers {
		m.peers[p] = struct{}{}
	}
	for p := range b.peers {
		m.peers[p] = struct{}{}
	}
	t.detach(n, a)
	t.detach(n, b)
	t.attach(n, m)
	t.attach(m, a)
	t.attach(m, b)
	return m
}

// splitChild replaces internal child i of n by its children (the Cobweb
// split operator).
func (t *Tree) splitChild(n *Node, i int) {
	child := n.children[i]
	t.detach(n, child)
	for _, gc := range append([]*Node(nil), child.children...) {
		t.detach(child, gc)
		t.attach(n, gc)
	}
}

// enforceArity merges the two closest children while the arity cap is
// exceeded.
func (t *Tree) enforceArity(n *Node) {
	if t.cfg.MaxChildren <= 1 {
		return
	}
	for len(n.children) > t.cfg.MaxChildren {
		i, j := t.closestPair(n)
		t.mergeChildren(n, i, j)
		t.stats.Merges++
	}
}

// String renders the hierarchy (Figure 3 style).
func (t *Tree) String() string {
	var sb strings.Builder
	t.render(&sb, t.root, 0)
	return sb.String()
}

// Validate checks the structural invariants: parent aggregates equal the sum
// of child aggregates, leaf keys are registered, parent pointers are
// consistent. It is used by tests and by merge/reconciliation assertions.
func (t *Tree) Validate() error {
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n.IsLeaf() {
			if t.byKey[n.key] != n {
				return fmt.Errorf("saintetiq: leaf %d key %q not registered", n.id, n.key)
			}
			if len(n.children) != 0 {
				return fmt.Errorf("saintetiq: leaf %d has children", n.id)
			}
			return nil
		}
		if n != t.root && len(n.children) == 0 {
			return fmt.Errorf("saintetiq: internal node %d has no children", n.id)
		}
		var sum float64
		for _, c := range n.children {
			if c.parent != n {
				return fmt.Errorf("saintetiq: node %d has broken parent pointer", c.id)
			}
			sum += c.count
			if err := walk(c); err != nil {
				return err
			}
		}
		if len(n.children) > 0 && !approxEq(sum, n.count, 1e-6) {
			return fmt.Errorf("saintetiq: node %d count %.6f != children sum %.6f", n.id, n.count, sum)
		}
		for a := range t.attrs {
			for j := range t.attrs[a].labels {
				var s float64
				for _, c := range n.children {
					s += c.counts[a][j]
				}
				if len(n.children) > 0 && !approxEq(s, n.counts[a][j], 1e-6) {
					return fmt.Errorf("saintetiq: node %d attr %d label %d count mismatch", n.id, a, j)
				}
			}
		}
		return nil
	}
	if t.root.parent != nil {
		return errors.New("saintetiq: root has a parent")
	}
	return walk(t.root)
}

func approxEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if b > scale {
		scale = b
	}
	return d <= tol*scale
}
