package saintetiq

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"p2psum/internal/cells"
	"p2psum/internal/wire"
)

// Wire format: summaries travel in localsum and reconciliation messages
// (paper §4), so they need a compact, self-contained serialization. The
// tree is flattened preorder with parent indexes; vocabularies ride along
// so a received summary can be checked against the local CBK.

type wireAttr struct {
	Name    string
	Labels  []string
	Numeric bool
}

type wireNode struct {
	Parent   int // index into the flat array, -1 for the root
	Key      string
	Count    float64
	Counts   [][]float64
	Grades   [][]float64
	Measures []cells.Measure
	Peers    []PeerID
}

type wireTree struct {
	Cfg   Config
	Attrs []wireAttr
	Nodes []wireNode
}

// EncodeGob serializes the hierarchy.
func (t *Tree) EncodeGob() ([]byte, error) {
	w := wireTree{Cfg: t.cfg}
	for _, a := range t.attrs {
		w.Attrs = append(w.Attrs, wireAttr{Name: a.name, Labels: a.labels, Numeric: a.numeric})
	}
	index := make(map[*Node]int)
	t.Walk(func(n *Node) bool {
		parent := -1
		if n.parent != nil {
			parent = index[n.parent]
		}
		index[n] = len(w.Nodes)
		w.Nodes = append(w.Nodes, wireNode{
			Parent:   parent,
			Key:      n.key,
			Count:    n.count,
			Counts:   n.counts,
			Grades:   n.grades,
			Measures: n.measures,
			Peers:    n.PeerIDs(),
		})
		return true
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("saintetiq: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGob reconstructs a hierarchy serialized by EncodeGob.
func DecodeGob(b []byte) (*Tree, error) {
	var w wireTree
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("saintetiq: decode: %w", err)
	}
	if len(w.Nodes) == 0 {
		return nil, fmt.Errorf("saintetiq: decode: empty tree")
	}
	t := &Tree{cfg: w.Cfg, byKey: make(map[string]*Node)}
	for _, a := range w.Attrs {
		info := attrInfo{name: a.Name, labels: a.Labels, numeric: a.Numeric, indexOf: make(map[string]int, len(a.Labels))}
		for j, lab := range a.Labels {
			info.indexOf[lab] = j
		}
		t.attrs = append(t.attrs, info)
	}
	nodes := make([]*Node, len(w.Nodes))
	for i, wn := range w.Nodes {
		n := &Node{
			id:       i,
			key:      wn.Key,
			count:    wn.Count,
			counts:   wn.Counts,
			grades:   wn.Grades,
			measures: wn.Measures,
			peers:    make(map[PeerID]struct{}, len(wn.Peers)),
		}
		if len(n.counts) != len(t.attrs) || len(n.grades) != len(t.attrs) || len(n.measures) != len(t.attrs) {
			return nil, fmt.Errorf("saintetiq: decode: node %d arity mismatch", i)
		}
		for _, p := range wn.Peers {
			n.peers[p] = struct{}{}
		}
		nodes[i] = n
		if wn.Parent >= 0 {
			if wn.Parent >= i {
				return nil, fmt.Errorf("saintetiq: decode: node %d has forward parent %d", i, wn.Parent)
			}
			n.parent = nodes[wn.Parent]
			n.parent.children = append(n.parent.children, n)
		} else if i != 0 {
			return nil, fmt.Errorf("saintetiq: decode: node %d is a second root", i)
		}
		if n.key != "" {
			t.byKey[n.key] = n
		}
	}
	t.root = nodes[0]
	t.nextID = len(nodes)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodedSize returns the serialized size in bytes (the message-size unit of
// the §6.1.1 storage model).
func (t *Tree) EncodedSize() (int, error) {
	b, err := t.EncodeGob()
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// AppendWire serializes the hierarchy into the compact wire encoding used
// by the protocol codecs (internal/core registers it with internal/wire).
// Unlike EncodeGob it is reflection-free — every message transport charges
// summaries their real encoded length, so this runs on the Send hot path —
// and sparse: only positively-counted descriptors are written, so a leaf
// costs its intent rather than the full vocabulary. The layout is
// versioned by the surrounding frame (wire.FrameVersion); attribute
// vocabularies ride along like in the gob format, so a received summary
// can be checked against the local CBK.
func (t *Tree) AppendWire(e *wire.Enc) {
	e.Varint(int64(t.cfg.MaxChildren))
	e.Varint(int64(t.cfg.MaxSplitRounds))
	e.Uvarint(uint64(len(t.attrs)))
	for _, a := range t.attrs {
		e.String(a.name)
		e.Strings(a.labels)
		e.Bool(a.numeric)
	}
	index := make(map[*Node]int)
	nodes := 0
	t.Walk(func(*Node) bool { nodes++; return true })
	e.Uvarint(uint64(nodes))
	t.Walk(func(n *Node) bool {
		parent := -1
		if n.parent != nil {
			parent = index[n.parent]
		}
		index[n] = len(index)
		e.Varint(int64(parent))
		e.String(n.key)
		e.Float64(n.count)
		for a := range t.attrs {
			nnz := 0
			for j := range n.counts[a] {
				if n.counts[a][j] != 0 || n.grades[a][j] != 0 {
					nnz++
				}
			}
			e.Uvarint(uint64(nnz))
			for j := range n.counts[a] {
				if n.counts[a][j] != 0 || n.grades[a][j] != 0 {
					e.Uvarint(uint64(j))
					e.Float64(n.counts[a][j])
					e.Float64(n.grades[a][j])
				}
			}
			m := n.measures[a]
			e.Float64(m.Weight)
			e.Float64(m.Min)
			e.Float64(m.Max)
			e.Float64(m.Sum)
			e.Float64(m.SumSq)
		}
		peers := n.PeerIDs()
		e.Uvarint(uint64(len(peers)))
		for _, p := range peers {
			e.Varint(int64(p))
		}
		return true
	})
}

// DecodeWire reconstructs a hierarchy serialized by AppendWire and
// validates its structural invariants.
func DecodeWire(d *wire.Dec) (*Tree, error) {
	t := &Tree{byKey: make(map[string]*Node)}
	t.cfg.MaxChildren = int(d.Varint())
	t.cfg.MaxSplitRounds = int(d.Varint())
	attrCount := d.Uvarint()
	for i := uint64(0); i < attrCount; i++ {
		info := attrInfo{name: d.String(), labels: d.Strings(), numeric: d.Bool()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		info.indexOf = make(map[string]int, len(info.labels))
		for j, lab := range info.labels {
			info.indexOf[lab] = j
		}
		t.attrs = append(t.attrs, info)
	}
	nodeCount := d.Uvarint()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if nodeCount == 0 {
		return nil, errors.New("saintetiq: decode: empty tree")
	}
	var nodes []*Node
	for i := uint64(0); i < nodeCount; i++ {
		parent := int(d.Varint())
		n := &Node{
			id:       int(i),
			key:      d.String(),
			count:    d.Float64(),
			counts:   make([][]float64, len(t.attrs)),
			grades:   make([][]float64, len(t.attrs)),
			measures: make([]cells.Measure, len(t.attrs)),
			peers:    make(map[PeerID]struct{}),
		}
		for a := range t.attrs {
			n.counts[a] = make([]float64, len(t.attrs[a].labels))
			n.grades[a] = make([]float64, len(t.attrs[a].labels))
			nnz := d.Uvarint()
			for k := uint64(0); k < nnz; k++ {
				j := d.Uvarint()
				if d.Err() != nil {
					return nil, d.Err()
				}
				if j >= uint64(len(n.counts[a])) {
					return nil, fmt.Errorf("saintetiq: decode: node %d attr %d label %d out of vocabulary", i, a, j)
				}
				n.counts[a][j] = d.Float64()
				n.grades[a][j] = d.Float64()
			}
			n.measures[a] = cells.Measure{
				Weight: d.Float64(),
				Min:    d.Float64(),
				Max:    d.Float64(),
				Sum:    d.Float64(),
				SumSq:  d.Float64(),
			}
		}
		peerCount := d.Uvarint()
		for k := uint64(0); k < peerCount; k++ {
			n.peers[PeerID(d.Varint())] = struct{}{}
			if d.Err() != nil {
				return nil, d.Err()
			}
		}
		if d.Err() != nil {
			return nil, d.Err()
		}
		nodes = append(nodes, n)
		if parent >= 0 {
			if parent >= int(i) {
				return nil, fmt.Errorf("saintetiq: decode: node %d has forward parent %d", i, parent)
			}
			n.parent = nodes[parent]
			n.parent.children = append(n.parent.children, n)
		} else if i != 0 {
			return nil, fmt.Errorf("saintetiq: decode: node %d is a second root", i)
		}
		if n.key != "" {
			t.byKey[n.key] = n
		}
	}
	t.root = nodes[0]
	t.nextID = len(nodes)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
