package saintetiq

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"p2psum/internal/cells"
)

// Wire format: summaries travel in localsum and reconciliation messages
// (paper §4), so they need a compact, self-contained serialization. The
// tree is flattened preorder with parent indexes; vocabularies ride along
// so a received summary can be checked against the local CBK.

type wireAttr struct {
	Name    string
	Labels  []string
	Numeric bool
}

type wireNode struct {
	Parent   int // index into the flat array, -1 for the root
	Key      string
	Count    float64
	Counts   [][]float64
	Grades   [][]float64
	Measures []cells.Measure
	Peers    []PeerID
}

type wireTree struct {
	Cfg   Config
	Attrs []wireAttr
	Nodes []wireNode
}

// EncodeGob serializes the hierarchy.
func (t *Tree) EncodeGob() ([]byte, error) {
	w := wireTree{Cfg: t.cfg}
	for _, a := range t.attrs {
		w.Attrs = append(w.Attrs, wireAttr{Name: a.name, Labels: a.labels, Numeric: a.numeric})
	}
	index := make(map[*Node]int)
	t.Walk(func(n *Node) bool {
		parent := -1
		if n.parent != nil {
			parent = index[n.parent]
		}
		index[n] = len(w.Nodes)
		w.Nodes = append(w.Nodes, wireNode{
			Parent:   parent,
			Key:      n.key,
			Count:    n.count,
			Counts:   n.counts,
			Grades:   n.grades,
			Measures: n.measures,
			Peers:    n.PeerIDs(),
		})
		return true
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, fmt.Errorf("saintetiq: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeGob reconstructs a hierarchy serialized by EncodeGob.
func DecodeGob(b []byte) (*Tree, error) {
	var w wireTree
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return nil, fmt.Errorf("saintetiq: decode: %w", err)
	}
	if len(w.Nodes) == 0 {
		return nil, fmt.Errorf("saintetiq: decode: empty tree")
	}
	t := &Tree{cfg: w.Cfg, byKey: make(map[string]*Node)}
	for _, a := range w.Attrs {
		info := attrInfo{name: a.Name, labels: a.Labels, numeric: a.Numeric, indexOf: make(map[string]int, len(a.Labels))}
		for j, lab := range a.Labels {
			info.indexOf[lab] = j
		}
		t.attrs = append(t.attrs, info)
	}
	nodes := make([]*Node, len(w.Nodes))
	for i, wn := range w.Nodes {
		n := &Node{
			id:       i,
			key:      wn.Key,
			count:    wn.Count,
			counts:   wn.Counts,
			grades:   wn.Grades,
			measures: wn.Measures,
			peers:    make(map[PeerID]struct{}, len(wn.Peers)),
		}
		if len(n.counts) != len(t.attrs) || len(n.grades) != len(t.attrs) || len(n.measures) != len(t.attrs) {
			return nil, fmt.Errorf("saintetiq: decode: node %d arity mismatch", i)
		}
		for _, p := range wn.Peers {
			n.peers[p] = struct{}{}
		}
		nodes[i] = n
		if wn.Parent >= 0 {
			if wn.Parent >= i {
				return nil, fmt.Errorf("saintetiq: decode: node %d has forward parent %d", i, wn.Parent)
			}
			n.parent = nodes[wn.Parent]
			n.parent.children = append(n.parent.children, n)
		} else if i != 0 {
			return nil, fmt.Errorf("saintetiq: decode: node %d is a second root", i)
		}
		if n.key != "" {
			t.byKey[n.key] = n
		}
	}
	t.root = nodes[0]
	t.nextID = len(nodes)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodedSize returns the serialized size in bytes (the message-size unit of
// the §6.1.1 storage model).
func (t *Tree) EncodedSize() (int, error) {
	b, err := t.EncodeGob()
	if err != nil {
		return 0, err
	}
	return len(b), nil
}
