package saintetiq

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"p2psum/internal/bk"
	"p2psum/internal/cells"
	"p2psum/internal/data"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func paperStore(t *testing.T) *cells.Store {
	t.Helper()
	m, err := cells.NewMapper(bk.PaperExample(), data.PatientSchema())
	if err != nil {
		t.Fatal(err)
	}
	s := cells.NewStore(m)
	s.AddRelation(data.PaperPatients())
	return s
}

func medicalStore(t *testing.T, seed int64, n int) *cells.Store {
	t.Helper()
	m, err := cells.NewMapper(bk.Medical(), data.PatientSchema())
	if err != nil {
		t.Fatal(err)
	}
	s := cells.NewStore(m)
	s.AddRelation(data.NewPatientGenerator(seed, nil).Generate("r", n))
	return s
}

// TestFigure3Hierarchy builds the paper's example hierarchy from cells
// c1..c3 and checks the structural facts Figure 3 shows: a root covering
// everything with weight 3, three leaves, and a root intent of
// {young, adult} x {underweight, normal}.
func TestFigure3Hierarchy(t *testing.T) {
	tr := New(bk.PaperExample(), DefaultConfig())
	if err := tr.IncorporateStore(paperStore(t)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.LeafCount() != 3 {
		t.Fatalf("LeafCount = %d, want 3:\n%s", tr.LeafCount(), tr)
	}
	root := tr.Root()
	if !almost(root.Count(), 3) {
		t.Errorf("root count = %g, want 3", root.Count())
	}
	ageIdx := tr.AttrIndex("age")
	bmiIdx := tr.AttrIndex("bmi")
	if ageIdx != 0 || bmiIdx != 1 {
		t.Fatalf("attr indexes wrong: age=%d bmi=%d", ageIdx, bmiIdx)
	}
	wantAge := map[string]bool{"young": true, "adult": true}
	for _, j := range root.LabelIndexes(ageIdx) {
		if !wantAge[tr.Label(ageIdx, j)] {
			t.Errorf("unexpected root age label %q", tr.Label(ageIdx, j))
		}
		delete(wantAge, tr.Label(ageIdx, j))
	}
	if len(wantAge) != 0 {
		t.Errorf("root age intent misses %v", wantAge)
	}
	// Young carries weight 2 (c1) + 0.7 (c2).
	j := tr.LabelIndex(ageIdx, "young")
	if !almost(root.LabelCount(ageIdx, j), 2.7) {
		t.Errorf("root young count = %g, want 2.7", root.LabelCount(ageIdx, j))
	}
	// Rendering mentions the descriptors.
	if s := tr.String(); !strings.Contains(s, "young") || !strings.Contains(s, "normal") {
		t.Errorf("String misses intent:\n%s", s)
	}
}

func TestIncorporateFastPathStabilizes(t *testing.T) {
	tr := New(bk.PaperExample(), DefaultConfig())
	s := paperStore(t)
	if err := tr.IncorporateStore(s); err != nil {
		t.Fatal(err)
	}
	ops := tr.Stats().Structural()
	epoch := tr.Epoch()
	// Re-incorporating the same cells must ride the fast path only.
	if err := tr.IncorporateStore(s); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Structural() != ops {
		t.Errorf("re-incorporation changed structure: %d -> %d ops", ops, tr.Stats().Structural())
	}
	if tr.Epoch() != epoch {
		t.Errorf("re-incorporation bumped epoch %d -> %d", epoch, tr.Epoch())
	}
	if tr.Stats().FastPath != 3 {
		t.Errorf("FastPath = %d, want 3", tr.Stats().FastPath)
	}
	if !almost(tr.Root().Count(), 6) {
		t.Errorf("root count after doubling = %g, want 6", tr.Root().Count())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after fast path: %v", err)
	}
}

func TestLargeHierarchyInvariants(t *testing.T) {
	tr := New(bk.Medical(), DefaultConfig())
	s := medicalStore(t, 5, 1500)
	if err := tr.IncorporateStore(s); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tr.LeafCount() != s.Len() {
		t.Errorf("LeafCount = %d, want %d (one leaf per populated cell)", tr.LeafCount(), s.Len())
	}
	if tr.LeafCount() > bk.Medical().GridSize() {
		t.Errorf("leaves %d exceed grid bound %d", tr.LeafCount(), bk.Medical().GridSize())
	}
	if !almost(tr.Root().Count(), s.TupleWeight()) {
		t.Errorf("root count %g != store weight %g", tr.Root().Count(), s.TupleWeight())
	}
	if d := tr.Depth(); d < 2 {
		t.Errorf("depth = %d; expected a real hierarchy", d)
	}
	if b := tr.AvgBranching(); b < 1.5 || b > float64(DefaultConfig().MaxChildren)+0.01 {
		t.Errorf("avg branching = %g out of range", b)
	}
}

func TestArityCapEnforced(t *testing.T) {
	cfg := Config{MaxChildren: 3, MaxSplitRounds: 1}
	tr := New(bk.Medical(), cfg)
	if err := tr.IncorporateStore(medicalStore(t, 6, 800)); err != nil {
		t.Fatal(err)
	}
	tr.Walk(func(n *Node) bool {
		if len(n.Children()) > cfg.MaxChildren {
			t.Errorf("node %d has %d children, cap is %d", n.ID(), len(n.Children()), cfg.MaxChildren)
		}
		return true
	})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPeerExtents(t *testing.T) {
	tr := New(bk.PaperExample(), DefaultConfig())
	s := paperStore(t)
	cs := s.Cells()
	if err := tr.Incorporate(cs[0], 7); err != nil { // adult|normal
		t.Fatal(err)
	}
	if err := tr.Incorporate(cs[1], 9); err != nil { // young|normal
		t.Fatal(err)
	}
	if err := tr.Incorporate(cs[2], 7, 9); err != nil { // young|underweight
		t.Fatal(err)
	}
	root := tr.Root()
	ids := root.PeerIDs()
	if len(ids) != 2 || ids[0] != 7 || ids[1] != 9 {
		t.Errorf("root peers = %v, want [7 9]", ids)
	}
	if !root.HasPeer(7) || root.HasPeer(8) {
		t.Error("HasPeer wrong")
	}
	leaf := tr.Leaf(cs[0].Key())
	if leaf == nil || leaf.PeerCount() != 1 || !leaf.HasPeer(7) {
		t.Errorf("leaf peer extent wrong: %v", leaf.PeerIDs())
	}
}

func TestIncorporateErrors(t *testing.T) {
	tr := New(bk.PaperExample(), DefaultConfig())
	bad := &cells.Cell{Labels: []string{"young"}, Grades: []float64{1}, Count: 1, Measures: make([]cells.Measure, 1)}
	if err := tr.Incorporate(bad); err == nil {
		t.Error("arity-mismatched cell accepted")
	}
	bad2 := &cells.Cell{Labels: []string{"young", "gigantic"}, Grades: []float64{1, 1}, Count: 1, Measures: make([]cells.Measure, 2)}
	if err := tr.Incorporate(bad2); err == nil {
		t.Error("unknown label accepted")
	}
}

func TestMergeHierarchies(t *testing.T) {
	t1 := New(bk.Medical(), DefaultConfig())
	if err := t1.IncorporateStore(medicalStore(t, 10, 300), 1); err != nil {
		t.Fatal(err)
	}
	t2 := New(bk.Medical(), DefaultConfig())
	if err := t2.IncorporateStore(medicalStore(t, 20, 400), 2); err != nil {
		t.Fatal(err)
	}
	w1, w2 := t1.Root().Count(), t2.Root().Count()
	if err := t1.Merge(t2); err != nil {
		t.Fatal(err)
	}
	if err := t1.Validate(); err != nil {
		t.Fatalf("Validate after merge: %v", err)
	}
	if !almost(t1.Root().Count(), w1+w2) {
		t.Errorf("merged weight %g != %g + %g", t1.Root().Count(), w1, w2)
	}
	ids := t1.Root().PeerIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("merged peers = %v", ids)
	}
	// The source is untouched.
	if !almost(t2.Root().Count(), w2) {
		t.Errorf("merge mutated source: %g", t2.Root().Count())
	}
}

func TestMergeIncompatible(t *testing.T) {
	t1 := New(bk.Medical(), DefaultConfig())
	t2 := New(bk.PaperExample(), DefaultConfig())
	if err := t1.Merge(t2); err == nil {
		t.Error("incompatible merge accepted")
	}
}

func TestMergeLeafBoundNotTuples(t *testing.T) {
	// Complexity claim of §6.1.1: merging cost depends on leaves, not
	// tuples. Build one small and one big source over the same BK; the
	// merge touches at most GridSize leaves regardless of tuple counts.
	big := New(bk.Medical(), DefaultConfig())
	if err := big.IncorporateStore(medicalStore(t, 30, 3000), 1); err != nil {
		t.Fatal(err)
	}
	if big.LeafCount() > bk.Medical().GridSize() {
		t.Fatalf("leaf bound violated: %d > %d", big.LeafCount(), bk.Medical().GridSize())
	}
	dst := New(bk.Medical(), DefaultConfig())
	if err := dst.IncorporateStore(medicalStore(t, 31, 100), 2); err != nil {
		t.Fatal(err)
	}
	before := dst.Stats().Incorporations
	if err := dst.Merge(big); err != nil {
		t.Fatal(err)
	}
	if got := dst.Stats().Incorporations - before; got != big.LeafCount() {
		t.Errorf("merge did %d incorporations, want %d (leaf count)", got, big.LeafCount())
	}
}

func TestClone(t *testing.T) {
	tr := New(bk.Medical(), DefaultConfig())
	if err := tr.IncorporateStore(medicalStore(t, 40, 500), 3); err != nil {
		t.Fatal(err)
	}
	cl := tr.Clone()
	if err := cl.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if cl.LeafCount() != tr.LeafCount() || !almost(cl.Root().Count(), tr.Root().Count()) {
		t.Error("clone differs from original")
	}
	// Mutating the clone must not affect the original.
	extra := medicalStore(t, 41, 100)
	if err := cl.IncorporateStore(extra, 4); err != nil {
		t.Fatal(err)
	}
	if almost(cl.Root().Count(), tr.Root().Count()) {
		t.Error("clone mutation leaked into original")
	}
	if tr.Root().HasPeer(4) {
		t.Error("clone peer leaked into original")
	}
}

func TestGobRoundTrip(t *testing.T) {
	tr := New(bk.Medical(), DefaultConfig())
	if err := tr.IncorporateStore(medicalStore(t, 50, 400), 5); err != nil {
		t.Fatal(err)
	}
	b, err := tr.EncodeGob()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeGob(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.LeafCount() != tr.LeafCount() || back.NodeCount() != tr.NodeCount() {
		t.Errorf("round trip changed shape: %d/%d vs %d/%d leaves/nodes",
			back.LeafCount(), back.NodeCount(), tr.LeafCount(), tr.NodeCount())
	}
	if !almost(back.Root().Count(), tr.Root().Count()) {
		t.Errorf("round trip changed weight")
	}
	if !back.Root().HasPeer(5) {
		t.Error("round trip lost peer extent")
	}
	if sz, err := tr.EncodedSize(); err != nil || sz <= 0 {
		t.Errorf("EncodedSize = %d (%v)", sz, err)
	}
	if _, err := DecodeGob([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
}

func TestLeafCellRoundTrip(t *testing.T) {
	tr := New(bk.PaperExample(), DefaultConfig())
	s := paperStore(t)
	if err := tr.IncorporateStore(s, 11); err != nil {
		t.Fatal(err)
	}
	for _, leaf := range tr.Leaves() {
		c, peers := tr.LeafCell(leaf)
		if c.Key() != leaf.Key() {
			t.Errorf("LeafCell key %q != %q", c.Key(), leaf.Key())
		}
		if len(peers) != 1 || peers[0] != 11 {
			t.Errorf("LeafCell peers = %v", peers)
		}
		orig := s.Get(c.Key())
		if orig == nil || !almost(c.Count, orig.Count) {
			t.Errorf("LeafCell count %g != store %v", c.Count, orig)
		}
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Tree {
		tr := New(bk.Medical(), DefaultConfig())
		if err := tr.IncorporateStore(medicalStore(t, 60, 600), 1); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := build(), build()
	if a.String() != b.String() {
		t.Error("same input produced different hierarchies")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(bk.Medical(), DefaultConfig())
	if !tr.Empty() {
		t.Error("new tree not empty")
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("empty tree invalid: %v", err)
	}
	if tr.Depth() != 0 || tr.NodeCount() != 1 {
		t.Errorf("empty tree shape: depth=%d nodes=%d", tr.Depth(), tr.NodeCount())
	}
	if tr.AvgBranching() != 0 {
		t.Errorf("empty tree branching = %g", tr.AvgBranching())
	}
}

func TestOperatorString(t *testing.T) {
	for op, want := range map[operator]string{opHost: "host", opCreate: "create", opMerge: "merge", opSplit: "split", operator(9): "?"} {
		if op.String() != want {
			t.Errorf("operator(%d).String() = %q, want %q", int(op), op.String(), want)
		}
	}
}

// Property: incorporating any generated store keeps the tree valid and
// preserves total weight.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		m, err := cells.NewMapper(bk.Medical(), data.PatientSchema())
		if err != nil {
			return false
		}
		s := cells.NewStore(m)
		s.AddRelation(data.NewPatientGenerator(seed, nil).Generate("q", n))
		tr := New(bk.Medical(), DefaultConfig())
		if err := tr.IncorporateStore(s, 1); err != nil {
			return false
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		return almost(tr.Root().Count(), s.TupleWeight()) && tr.LeafCount() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: merge is weight-additive and peer-extent-unioning for any pair
// of generated hierarchies.
func TestQuickMergeAdditive(t *testing.T) {
	f := func(s1, s2 int64) bool {
		build := func(seed int64, peer PeerID) *Tree {
			m, _ := cells.NewMapper(bk.Medical(), data.PatientSchema())
			s := cells.NewStore(m)
			s.AddRelation(data.NewPatientGenerator(seed, nil).Generate("q", 40))
			tr := New(bk.Medical(), DefaultConfig())
			if err := tr.IncorporateStore(s, peer); err != nil {
				return nil
			}
			return tr
		}
		a, b := build(s1, 1), build(s2, 2)
		if a == nil || b == nil {
			return false
		}
		wa, wb := a.Root().Count(), b.Root().Count()
		if err := a.Merge(b); err != nil {
			return false
		}
		if err := a.Validate(); err != nil {
			return false
		}
		return almost(a.Root().Count(), wa+wb) && a.Root().HasPeer(1) && a.Root().HasPeer(2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestHierarchyStabilization reproduces the §4.2.1 claim: "as more tuples
// are processed, the need to adapt the hierarchy decreases". After a warmup
// stream, further batches from the same distribution cause (almost) no
// structural operations.
func TestHierarchyStabilization(t *testing.T) {
	m, err := cells.NewMapper(bk.Medical(), data.PatientSchema())
	if err != nil {
		t.Fatal(err)
	}
	tr := New(bk.Medical(), DefaultConfig())
	gen := data.NewPatientGenerator(70, nil)

	warm := cells.NewStore(m)
	warm.AddRelation(gen.Generate("warm", 4000))
	if err := tr.IncorporateStore(warm, 1); err != nil {
		t.Fatal(err)
	}
	warmOps := tr.Stats().Structural()

	late := cells.NewStore(m)
	late.AddRelation(gen.Generate("late", 4000))
	if err := tr.IncorporateStore(late, 1); err != nil {
		t.Fatal(err)
	}
	lateOps := tr.Stats().Structural() - warmOps
	if lateOps*5 > warmOps {
		t.Errorf("hierarchy did not stabilize: warm=%d ops, late=%d ops", warmOps, lateOps)
	}
}
