// Package saintetiq implements the SaintEtiQ summarization service (paper
// §3.2.2, VLDB'05 [29], Fuzzy Sets & Systems [12]): an incremental,
// Cobweb-style conceptual clustering of grid cells into a hierarchy of
// summaries, plus the distributed extensions the paper adds — peer extents
// (Definition 3) and hierarchy merging (CIKM'07 [27]).
//
// A summary z is a hyperrectangle of the descriptor space: its intent is, per
// attribute, the set of descriptors appearing in the cells below z; its
// extent is the tuple weight of those cells; its peer extent is the set of
// peers owning at least one of those tuples. Nodes form a tree ordered by
// the generalization relation of Definition 2: the root is the most general
// summary, the leaves are single grid cells.
package saintetiq

import (
	"fmt"
	"sort"
	"strings"

	"p2psum/internal/cells"
)

// PeerID identifies a peer in peer extents. The zero value NoPeer marks
// single-database summaries that carry no provenance.
type PeerID int

// NoPeer is the absent peer id.
const NoPeer PeerID = -1

// Node is one summary of the hierarchy.
type Node struct {
	id  int
	key string // cell key for leaves, "" for internal nodes

	count    float64             // extent: total tuple weight below this node
	counts   [][]float64         // attr x label: weighted descriptor counts
	grades   [][]float64         // attr x label: max membership grade seen
	measures []cells.Measure     // attr: weighted stats of numeric attributes
	peers    map[PeerID]struct{} // peer extent (Definition 3)

	parent   *Node
	children []*Node
}

// ID returns the node's tree-unique identifier.
func (n *Node) ID() int { return n.id }

// IsLeaf reports whether the node is a grid cell.
func (n *Node) IsLeaf() bool { return n.key != "" }

// Key returns the cell key of a leaf ("" for internal nodes).
func (n *Node) Key() string { return n.key }

// Count returns the node's extent weight (Rz cardinality under Ruspini BKs).
func (n *Node) Count() float64 { return n.count }

// Parent returns the parent node (nil at the root).
func (n *Node) Parent() *Node { return n.parent }

// Children returns the child summaries; callers must not mutate the slice.
func (n *Node) Children() []*Node { return n.children }

// Arity returns the number of children.
func (n *Node) Arity() int { return len(n.children) }

// LabelIndexes returns the canonical indexes of the descriptors present on
// attribute a (the node's intent on a).
func (n *Node) LabelIndexes(a int) []int {
	var out []int
	for j, c := range n.counts[a] {
		if c > 0 {
			out = append(out, j)
		}
	}
	return out
}

// LabelCount returns the weighted count of label j on attribute a.
func (n *Node) LabelCount(a, j int) float64 { return n.counts[a][j] }

// Grade returns the maximal membership grade of label j on attribute a.
func (n *Node) Grade(a, j int) float64 { return n.grades[a][j] }

// Measure returns the aggregated measure of attribute a.
func (n *Node) Measure(a int) cells.Measure { return n.measures[a] }

// PeerIDs returns the sorted peer extent.
func (n *Node) PeerIDs() []PeerID {
	out := make([]PeerID, 0, len(n.peers))
	for p := range n.peers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasPeer reports whether p belongs to the node's peer extent.
func (n *Node) HasPeer(p PeerID) bool {
	_, ok := n.peers[p]
	return ok
}

// PeerCount returns the size of the peer extent.
func (n *Node) PeerCount() int { return len(n.peers) }

// Depth returns the node's depth (root = 0).
func (n *Node) Depth() int {
	d := 0
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// contribution is the incremental update a cell (plus provenance) applies to
// every node on its insertion path.
type contribution struct {
	count    float64
	labels   []int // canonical label index per attribute
	grades   []float64
	measures []cells.Measure
	peers    []PeerID
}

// apply folds the contribution into the node's aggregates.
func (n *Node) apply(c *contribution) {
	n.count += c.count
	for a, j := range c.labels {
		n.counts[a][j] += c.count
		if c.grades[a] > n.grades[a][j] {
			n.grades[a][j] = c.grades[a]
		}
		n.measures[a].Merge(c.measures[a])
	}
	for _, p := range c.peers {
		if p != NoPeer {
			n.peers[p] = struct{}{}
		}
	}
}

// intentString renders the node intent like {age:young|adult, bmi:normal}.
func (t *Tree) intentString(n *Node) string {
	parts := make([]string, 0, len(t.attrs))
	for a, info := range t.attrs {
		idx := n.LabelIndexes(a)
		if len(idx) == 0 {
			continue
		}
		labs := make([]string, len(idx))
		for i, j := range idx {
			labs[i] = info.labels[j]
		}
		parts = append(parts, info.name+":"+strings.Join(labs, "|"))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// render writes the subtree rooted at n into sb.
func (t *Tree) render(sb *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	kind := "z"
	if n.IsLeaf() {
		kind = "cell"
	}
	fmt.Fprintf(sb, "%s%s%d %s count=%.2f", indent, kind, n.id, t.intentString(n), n.count)
	if len(n.peers) > 0 {
		fmt.Fprintf(sb, " peers=%d", len(n.peers))
	}
	sb.WriteString("\n")
	for _, c := range n.children {
		t.render(sb, c, depth+1)
	}
}
