package saintetiq

import (
	"strings"
	"testing"
	"testing/quick"

	"p2psum/internal/bk"
	"p2psum/internal/cells"
	"p2psum/internal/data"
)

func builtTree(t *testing.T, seed int64, n int) *Tree {
	t.Helper()
	tr := New(bk.Medical(), DefaultConfig())
	if err := tr.IncorporateStore(medicalStore(t, seed, n), 1); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMeasureQuality(t *testing.T) {
	tr := builtTree(t, 90, 800)
	q := tr.Measure()
	if q.Nodes != tr.NodeCount() || q.Leaves != tr.LeafCount() || q.Depth != tr.Depth() {
		t.Errorf("shape metrics inconsistent: %+v", q)
	}
	if q.Homogeneity <= 0 || q.Homogeneity > 1 {
		t.Errorf("homogeneity = %g out of (0,1]", q.Homogeneity)
	}
	if q.Specificity < 0 || q.Specificity > 1 {
		t.Errorf("specificity = %g out of [0,1]", q.Specificity)
	}
	if q.String() == "" {
		t.Error("String empty")
	}
	// Leaves are single cells: purity 1. So homogeneity strictly above the
	// root's purity.
	rootPurity := tr.nodePurity(tr.Root())
	if q.Homogeneity <= rootPurity {
		t.Errorf("homogeneity %g not above root purity %g", q.Homogeneity, rootPurity)
	}
	// Empty tree metrics are well-defined.
	empty := New(bk.Medical(), DefaultConfig())
	eq := empty.Measure()
	if eq.Nodes != 1 || eq.Homogeneity != 0 {
		t.Errorf("empty metrics: %+v", eq)
	}
}

func TestLevelCoversExtent(t *testing.T) {
	tr := builtTree(t, 91, 600)
	for depth := 0; depth <= tr.Depth(); depth++ {
		nodes := tr.Level(depth)
		var w float64
		for _, n := range nodes {
			w += n.Count()
		}
		if !almost(w, tr.Root().Count()) {
			t.Errorf("level %d covers weight %g, want %g", depth, w, tr.Root().Count())
		}
	}
	if got := tr.Level(0); len(got) != 1 || got[0] != tr.Root() {
		t.Error("level 0 is not the root")
	}
}

func TestDescribeLevel(t *testing.T) {
	tr := builtTree(t, 92, 500)
	out := tr.DescribeLevel(1)
	if !strings.Contains(out, "%") {
		t.Errorf("DescribeLevel output unexpected:\n%s", out)
	}
	// Heaviest line first.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Skip("hierarchy too flat")
	}
	if lines[0] < lines[1] && !strings.HasPrefix(lines[0], " ") {
		// Percentages are right-aligned; just check parseability of the
		// first field.
		t.Logf("describe output:\n%s", out)
	}
}

func TestIntentLabels(t *testing.T) {
	tr := builtTree(t, 93, 300)
	labels := tr.IntentLabels(tr.Root())
	if len(labels) != 4 {
		t.Errorf("root intent covers %d attributes, want 4", len(labels))
	}
	for attr, labs := range labels {
		if len(labs) == 0 {
			t.Errorf("attribute %s has empty intent", attr)
		}
	}
}

func TestPruneLightLeaves(t *testing.T) {
	tr := builtTree(t, 94, 1000)
	before := tr.LeafCount()
	weightBefore := tr.Root().Count()

	// Find a threshold that removes some but not all leaves.
	leaves := tr.Leaves()
	var light float64
	for _, l := range leaves {
		if l.Count() > light && l.Count() < 3 {
			light = l.Count()
		}
	}
	if light == 0 {
		t.Skip("no light leaves to prune")
	}
	removed := tr.PruneLightLeaves(light + 1e-9)
	if removed == 0 {
		t.Fatal("nothing pruned")
	}
	if tr.LeafCount() != before-removed {
		t.Errorf("leaf count %d, want %d", tr.LeafCount(), before-removed)
	}
	if tr.Root().Count() >= weightBefore {
		t.Error("pruning did not reduce weight")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("pruned tree invalid: %v", err)
	}
	// No chains: every internal non-root node has >= 2 children.
	tr.Walk(func(n *Node) bool {
		if !n.IsLeaf() && n != tr.Root() && len(n.Children()) < 2 {
			t.Errorf("node %d left as a chain (%d children)", n.ID(), len(n.Children()))
		}
		return true
	})
}

func TestPruneEverything(t *testing.T) {
	tr := builtTree(t, 95, 100)
	removed := tr.PruneLightLeaves(1e18)
	if removed == 0 {
		t.Fatal("nothing pruned")
	}
	if tr.LeafCount() != 0 {
		t.Errorf("leaves remain: %d", tr.LeafCount())
	}
	if tr.Root().Count() > 1e-9 {
		t.Errorf("weight remains: %g", tr.Root().Count())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("empty pruned tree invalid: %v", err)
	}
}

func TestWeightEntropy(t *testing.T) {
	tr := builtTree(t, 96, 800)
	h := tr.WeightEntropy()
	if h <= 0 {
		t.Errorf("entropy = %g, want positive for a populated tree", h)
	}
	empty := New(bk.Medical(), DefaultConfig())
	if empty.WeightEntropy() != 0 {
		t.Error("empty tree entropy nonzero")
	}
}

// Property: pruning preserves validity and never increases any shape
// metric.
func TestQuickPruneValid(t *testing.T) {
	f := func(seed int64, thRaw uint8) bool {
		m, err := cells.NewMapper(bk.Medical(), data.PatientSchema())
		if err != nil {
			return false
		}
		s := cells.NewStore(m)
		s.AddRelation(data.NewPatientGenerator(seed, nil).Generate("q", 120))
		tr := New(bk.Medical(), DefaultConfig())
		if err := tr.IncorporateStore(s, 1); err != nil {
			return false
		}
		before := tr.LeafCount()
		tr.PruneLightLeaves(float64(thRaw) / 16)
		if err := tr.Validate(); err != nil {
			return false
		}
		return tr.LeafCount() <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
