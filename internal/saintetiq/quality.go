package saintetiq

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hierarchy quality metrics. The paper tunes summary precision through the
// BK ("a detailed BK will lead to a greater precision in summary
// description, with the natural consequence of a larger summary", §6.1.1);
// these metrics quantify the resulting hierarchies so ablations can compare
// clustering configurations objectively.

// Quality aggregates structural and semantic measurements of a hierarchy.
type Quality struct {
	// Nodes, Leaves, Depth and Branching describe the shape.
	Nodes     int
	Leaves    int
	Depth     int
	Branching float64
	// Homogeneity is the weight-averaged descriptor purity of the internal
	// nodes: 1 when every node's extent agrees on one descriptor per
	// attribute, approaching 1/|labels| for uninformative nodes.
	Homogeneity float64
	// Specificity is the weight-averaged fraction of each attribute's
	// vocabulary NOT present in a node's intent: specific summaries
	// exclude most descriptors, the root typically excludes none.
	Specificity float64
	// RootScore is the category-utility of the root partition.
	RootScore float64
}

// String renders the metrics compactly.
func (q Quality) String() string {
	return fmt.Sprintf("nodes=%d leaves=%d depth=%d branching=%.2f homogeneity=%.3f specificity=%.3f rootCU=%.4f",
		q.Nodes, q.Leaves, q.Depth, q.Branching, q.Homogeneity, q.Specificity, q.RootScore)
}

// Measure computes the hierarchy's quality metrics.
func (t *Tree) Measure() Quality {
	q := Quality{
		Nodes:     t.NodeCount(),
		Leaves:    t.LeafCount(),
		Depth:     t.Depth(),
		Branching: t.AvgBranching(),
	}
	var homW, homSum, speW, speSum float64
	t.Walk(func(n *Node) bool {
		if n.count <= 0 {
			return true
		}
		homSum += n.count * t.nodePurity(n)
		homW += n.count
		speSum += n.count * t.nodeSpecificity(n)
		speW += n.count
		return true
	})
	if homW > 0 {
		q.Homogeneity = homSum / homW
	}
	if speW > 0 {
		q.Specificity = speSum / speW
	}
	if len(t.root.children) > 0 {
		children := make([]nodeStat, len(t.root.children))
		for i, c := range t.root.children {
			children[i] = statOf(c)
		}
		q.RootScore = t.partitionScore(statOf(t.root), children)
	}
	return q
}

// nodePurity is the mean, over attributes, of the squared descriptor
// frequencies (Gini-style purity: 1 iff a single descriptor per attribute).
func (t *Tree) nodePurity(n *Node) float64 {
	if n.count == 0 {
		return 0
	}
	var total float64
	for a := range t.attrs {
		var s float64
		for _, c := range n.counts[a] {
			if c > 0 {
				p := c / n.count
				s += p * p
			}
		}
		total += s
	}
	return total / float64(len(t.attrs))
}

// nodeSpecificity is the mean, over attributes, of the excluded-vocabulary
// fraction.
func (t *Tree) nodeSpecificity(n *Node) float64 {
	var total float64
	for a := range t.attrs {
		present := 0
		for _, c := range n.counts[a] {
			if c > 0 {
				present++
			}
		}
		total += 1 - float64(present)/float64(len(t.attrs[a].labels))
	}
	return total / float64(len(t.attrs))
}

// PruneLightLeaves removes leaves whose weight is below minWeight,
// restructuring ancestors accordingly (subtracting the removed
// contribution). It returns the number of removed leaves. Degenerate
// chains left behind are collapsed. Pruning keeps summaries bounded when a
// user wants a deliberately coarse view (the paper's precision dial turned
// the other way).
func (t *Tree) PruneLightLeaves(minWeight float64) int {
	var victims []*Node
	for _, leaf := range t.Leaves() {
		if leaf.count < minWeight {
			victims = append(victims, leaf)
		}
	}
	for _, leaf := range victims {
		t.removeLeaf(leaf)
	}
	return len(victims)
}

// removeLeaf subtracts a leaf's aggregates from its ancestors and detaches
// it, collapsing single-child internal nodes.
func (t *Tree) removeLeaf(leaf *Node) {
	delete(t.byKey, leaf.key)
	for p := leaf.parent; p != nil; p = p.parent {
		p.count -= leaf.count
		for a := range t.attrs {
			for j := range p.counts[a] {
				p.counts[a][j] -= leaf.counts[a][j]
				if p.counts[a][j] < 1e-12 {
					p.counts[a][j] = 0
				}
			}
		}
		if p.count < 1e-12 {
			p.count = 0
		}
	}
	parent := leaf.parent
	t.detach(parent, leaf)
	// Collapse chains: an internal non-root node with one child is
	// replaced by that child.
	for parent != nil && parent != t.root && len(parent.children) == 1 {
		child := parent.children[0]
		grand := parent.parent
		t.detach(parent, child)
		t.detach(grand, parent)
		t.attach(grand, child)
		parent = grand
	}
	// An empty root child list is fine (empty tree).
}

// Level returns the summaries at the given depth (the paper: "general
// trends in the data could be identified in the very first levels of the
// tree whereas precise information has to be looked at near the leaves").
// Leaves shallower than the requested depth are included, so the returned
// set always covers the whole extent.
func (t *Tree) Level(depth int) []*Node {
	var out []*Node
	var walk func(n *Node, d int)
	walk = func(n *Node, d int) {
		if d == depth || n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.children {
			walk(c, d+1)
		}
	}
	walk(t.root, 0)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// IntentLabels exports a node's intent as attribute -> sorted labels.
func (t *Tree) IntentLabels(n *Node) map[string][]string {
	out := make(map[string][]string, len(t.attrs))
	for a, info := range t.attrs {
		var labs []string
		for _, j := range n.LabelIndexes(a) {
			labs = append(labs, info.labels[j])
		}
		if len(labs) > 0 {
			out[info.name] = labs
		}
	}
	return out
}

// DescribeLevel renders one hierarchy level as human-readable trend lines,
// most significant (heaviest) summaries first.
func (t *Tree) DescribeLevel(depth int) string {
	nodes := t.Level(depth)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].count != nodes[j].count {
			return nodes[i].count > nodes[j].count
		}
		return nodes[i].id < nodes[j].id
	})
	var sb strings.Builder
	total := t.root.count
	for _, n := range nodes {
		pct := 0.0
		if total > 0 {
			pct = 100 * n.count / total
		}
		fmt.Fprintf(&sb, "%5.1f%% %s\n", pct, t.intentString(n))
	}
	return sb.String()
}

// WeightEntropy returns the Shannon entropy (bits) of the leaf weight
// distribution — a balance indicator for the clustering.
func (t *Tree) WeightEntropy() float64 {
	total := t.root.count
	if total <= 0 {
		return 0
	}
	var h float64
	for _, leaf := range t.Leaves() {
		if leaf.count <= 0 {
			continue
		}
		p := leaf.count / total
		h -= p * math.Log2(p)
	}
	return h
}
