// Package workload generates the evaluation workload of Table 3: skewed
// (lognormal) peer session lifetimes with a 3-hour mean and 1-hour median,
// Poisson query arrivals at 1 query per node per 20 minutes, query match
// sets covering 10% of the peers, and local-summary modification processes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"p2psum/internal/sim"
)

// LifetimeDist draws peer session lifetimes. The paper: "local summary
// lifetimes, like node lifetimes, follow a skewed distribution with a mean
// value of 3 hours, and a median value of 60 minutes" (§6.2.1).
type LifetimeDist struct {
	mu, sigma float64 // lognormal parameters
}

// NewLifetimeDist builds a lognormal distribution with the given mean and
// median (both in seconds). The lognormal is the standard skewed model:
// median = exp(mu), mean = exp(mu + sigma²/2).
func NewLifetimeDist(mean, median float64) (*LifetimeDist, error) {
	if median <= 0 || mean <= median {
		return nil, fmt.Errorf("workload: need mean > median > 0, got mean=%g median=%g", mean, median)
	}
	mu := math.Log(median)
	sigma := math.Sqrt(2 * math.Log(mean/median))
	return &LifetimeDist{mu: mu, sigma: sigma}, nil
}

// PaperLifetimes returns the Table 3 distribution: mean 3 h, median 1 h.
func PaperLifetimes() *LifetimeDist {
	d, err := NewLifetimeDist(3*3600, 3600)
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	return d
}

// Draw samples one lifetime (seconds of virtual time).
func (d *LifetimeDist) Draw(rng *rand.Rand) sim.Time {
	return sim.Time(math.Exp(d.mu + d.sigma*rng.NormFloat64()))
}

// Mean returns the analytic mean of the distribution in seconds.
func (d *LifetimeDist) Mean() float64 { return math.Exp(d.mu + d.sigma*d.sigma/2) }

// Median returns the analytic median in seconds.
func (d *LifetimeDist) Median() float64 { return math.Exp(d.mu) }

// QueryRate is the paper's workload rate: 1 query per node per 20 minutes
// (0.00083 queries per node per second, after [5]).
const QueryRate = 1.0 / (20 * 60)

// ExpInterarrival draws an exponential interarrival time for the given rate
// (events per second).
func ExpInterarrival(rng *rand.Rand, rate float64) sim.Time {
	if rate <= 0 {
		return sim.End
	}
	return sim.Time(rng.ExpFloat64() / rate)
}

// MatchSet draws the ground-truth matching peers of a query: each query "is
// matched by 10% of the total number of peers" (Table 3). The hit fraction
// is configurable for sensitivity experiments. At least one peer matches.
func MatchSet(rng *rand.Rand, nPeers int, hitFraction float64) map[int]bool {
	k := int(math.Round(hitFraction * float64(nPeers)))
	if k < 1 {
		k = 1
	}
	if k > nPeers {
		k = nPeers
	}
	// Partial Fisher-Yates over the peer ids.
	ids := make([]int, nPeers)
	for i := range ids {
		ids[i] = i
	}
	out := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(nPeers-i)
		ids[i], ids[j] = ids[j], ids[i]
		out[ids[i]] = true
	}
	return out
}

// ClusteredMatchSet draws a match set with group locality (§5.2.2: "users
// tend to work in groups ... results are supposed to be nearby"): matches
// concentrate in a contiguous id window with a fraction of uniform
// stragglers.
func ClusteredMatchSet(rng *rand.Rand, nPeers int, hitFraction, locality float64) map[int]bool {
	k := int(math.Round(hitFraction * float64(nPeers)))
	if k < 1 {
		k = 1
	}
	if k > nPeers {
		k = nPeers
	}
	out := make(map[int]bool, k)
	start := rng.Intn(nPeers)
	window := k * 3
	if window < 1 {
		window = 1
	}
	for len(out) < k {
		if rng.Float64() < locality {
			out[(start+rng.Intn(window))%nPeers] = true
		} else {
			out[rng.Intn(nPeers)] = true
		}
	}
	return out
}

// Churn schedules join/leave sessions for peers. Each peer cycles through
// online sessions (drawn from the lifetime distribution) separated by
// offline gaps (a fixed fraction of the lifetime scale by default).
type Churn struct {
	Lifetimes *LifetimeDist
	// OfflineFactor scales the offline gap relative to the drawn session
	// length (0.5 means peers stay offline half as long as they stay
	// online). Zero keeps peers permanently online after their first join.
	OfflineFactor float64
}

// Session is one online interval of a peer.
type Session struct {
	Peer  int
	Start sim.Time
	End   sim.Time
}

// Plan precomputes the online sessions of every peer over the horizon.
// Peers all start online at time zero (the paper constructs domains first,
// then studies maintenance under volatility).
func (c *Churn) Plan(rng *rand.Rand, nPeers int, horizon sim.Time) []Session {
	var out []Session
	for p := 0; p < nPeers; p++ {
		t := sim.Time(0)
		for t < horizon {
			life := c.Lifetimes.Draw(rng)
			end := t + life
			if end > horizon {
				end = horizon
			}
			out = append(out, Session{Peer: p, Start: t, End: end})
			if c.OfflineFactor <= 0 {
				break
			}
			t = end + sim.Time(c.OfflineFactor*float64(life))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// BurstArrivals shapes a flash crowd: n arrival offsets within
// [0, spread], front-loaded — the bulk of the crowd lands in the first
// fraction of the window and a thinning exponential tail of stragglers
// fills the rest, the empirical shape of flash-crowd joins (a publicized
// resource draws an immediate spike that decays). Offsets are returned
// ascending; spread <= 0 degenerates to n simultaneous arrivals.
func BurstArrivals(rng *rand.Rand, n int, spread sim.Time) []sim.Time {
	out := make([]sim.Time, n)
	if spread <= 0 {
		return out
	}
	for i := range out {
		// Exponential with mean spread/4, truncated at the window end:
		// ~63% of arrivals in the first quarter, stragglers to the edge.
		off := sim.Time(rng.ExpFloat64() * float64(spread) / 4)
		if off > spread {
			off = spread
		}
		out[i] = off
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ModificationProcess models local-database update pressure: the probability
// that, by the time a peer's freshness bit is stale, its database content
// has actually changed relative to a given query (§6.2.2 uses this to turn
// worst-case staleness into the "real estimation" of Figure 5).
type ModificationProcess struct {
	// ChangeProb is the probability that a stale-flagged peer's data
	// actually changed w.r.t. a random query.
	ChangeProb float64
}

// PaperModification returns the process calibrated to the paper's reported
// reduction: the real stale fraction is ~4.5x below the worst case, so a
// stale flag corresponds to an actual change with probability ~1/4.5.
func PaperModification() ModificationProcess {
	return ModificationProcess{ChangeProb: 1.0 / 4.5}
}

// Changed draws whether a stale-flagged peer really changed.
func (m ModificationProcess) Changed(rng *rand.Rand) bool {
	return rng.Float64() < m.ChangeProb
}
