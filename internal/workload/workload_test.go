package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2psum/internal/sim"
)

func TestLifetimeDistParameters(t *testing.T) {
	d := PaperLifetimes()
	if math.Abs(d.Mean()-3*3600) > 1 {
		t.Errorf("Mean = %g, want 10800", d.Mean())
	}
	if math.Abs(d.Median()-3600) > 1 {
		t.Errorf("Median = %g, want 3600", d.Median())
	}
}

func TestLifetimeDistSampling(t *testing.T) {
	d := PaperLifetimes()
	rng := rand.New(rand.NewSource(1))
	n := 200000
	var sum float64
	vals := make([]float64, n)
	for i := range vals {
		v := float64(d.Draw(rng))
		if v <= 0 {
			t.Fatal("non-positive lifetime")
		}
		vals[i] = v
		sum += v
	}
	mean := sum / float64(n)
	// Lognormal sample means converge slowly; accept 10%.
	if mean < 0.9*d.Mean() || mean > 1.1*d.Mean() {
		t.Errorf("sample mean %g, want ~%g", mean, d.Mean())
	}
	// Median via counting below the analytic median.
	below := 0
	for _, v := range vals {
		if v < d.Median() {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("fraction below median = %g, want ~0.5 (skewed as Table 3)", frac)
	}
}

func TestNewLifetimeDistErrors(t *testing.T) {
	if _, err := NewLifetimeDist(100, 200); err == nil {
		t.Error("mean < median accepted")
	}
	if _, err := NewLifetimeDist(100, 0); err == nil {
		t.Error("median 0 accepted")
	}
	if _, err := NewLifetimeDist(100, 100); err == nil {
		t.Error("mean == median accepted (no skew)")
	}
}

func TestExpInterarrival(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var sum sim.Time
	n := 100000
	for i := 0; i < n; i++ {
		sum += ExpInterarrival(rng, QueryRate)
	}
	mean := float64(sum) / float64(n)
	want := 1.0 / QueryRate // 1200 s
	if mean < 0.95*want || mean > 1.05*want {
		t.Errorf("mean interarrival %g, want ~%g", mean, want)
	}
	if ExpInterarrival(rng, 0) != sim.End {
		t.Error("zero rate should never fire")
	}
}

func TestMatchSet(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ms := MatchSet(rng, 500, 0.10)
	if len(ms) != 50 {
		t.Errorf("match set size = %d, want 50", len(ms))
	}
	for id := range ms {
		if id < 0 || id >= 500 {
			t.Fatalf("id %d out of range", id)
		}
	}
	// Tiny populations still match at least one peer.
	if len(MatchSet(rng, 3, 0.01)) != 1 {
		t.Error("minimum match size violated")
	}
	// Fraction above 1 clamps to the population.
	if len(MatchSet(rng, 10, 2)) != 10 {
		t.Error("overfull match set not clamped")
	}
}

func TestClusteredMatchSet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ms := ClusteredMatchSet(rng, 1000, 0.10, 0.9)
	if len(ms) != 100 {
		t.Errorf("size = %d", len(ms))
	}
	for id := range ms {
		if id < 0 || id >= 1000 {
			t.Fatalf("id %d out of range", id)
		}
	}
}

func TestChurnPlan(t *testing.T) {
	c := &Churn{Lifetimes: PaperLifetimes(), OfflineFactor: 0.5}
	rng := rand.New(rand.NewSource(5))
	horizon := sim.Hours(24)
	sessions := c.Plan(rng, 50, horizon)
	if len(sessions) < 50 {
		t.Fatalf("only %d sessions for 50 peers", len(sessions))
	}
	perPeer := make(map[int][]Session)
	for _, s := range sessions {
		if s.Start < 0 || s.End > horizon || s.End < s.Start {
			t.Fatalf("bad session %+v", s)
		}
		perPeer[s.Peer] = append(perPeer[s.Peer], s)
	}
	if len(perPeer) != 50 {
		t.Errorf("peers covered = %d", len(perPeer))
	}
	// Sessions of one peer must not overlap and must be ordered.
	for p, ss := range perPeer {
		for i := 1; i < len(ss); i++ {
			if ss[i].Start < ss[i-1].End {
				t.Fatalf("peer %d sessions overlap: %+v then %+v", p, ss[i-1], ss[i])
			}
		}
	}
	// Ordered globally by start time.
	for i := 1; i < len(sessions); i++ {
		if sessions[i].Start < sessions[i-1].Start {
			t.Fatal("sessions not sorted")
		}
	}
}

func TestChurnNoOffline(t *testing.T) {
	c := &Churn{Lifetimes: PaperLifetimes(), OfflineFactor: 0}
	sessions := c.Plan(rand.New(rand.NewSource(6)), 10, sim.Hours(1000))
	if len(sessions) != 10 {
		t.Errorf("OfflineFactor=0 should yield exactly one session per peer, got %d", len(sessions))
	}
}

func TestModificationProcess(t *testing.T) {
	m := PaperModification()
	rng := rand.New(rand.NewSource(7))
	n, changed := 100000, 0
	for i := 0; i < n; i++ {
		if m.Changed(rng) {
			changed++
		}
	}
	frac := float64(changed) / float64(n)
	if math.Abs(frac-1.0/4.5) > 0.01 {
		t.Errorf("change fraction = %g, want ~%g", frac, 1.0/4.5)
	}
}

// Property: match sets have exactly the requested clamped size and unique
// members.
func TestQuickMatchSetSize(t *testing.T) {
	f := func(seed int64, nRaw uint16, fRaw uint8) bool {
		n := int(nRaw%2000) + 1
		frac := float64(fRaw%100) / 100
		rng := rand.New(rand.NewSource(seed))
		ms := MatchSet(rng, n, frac)
		k := int(math.Round(frac * float64(n)))
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		return len(ms) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: drawn lifetimes are positive and finite.
func TestQuickLifetimesPositive(t *testing.T) {
	d := PaperLifetimes()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			v := float64(d.Draw(rng))
			if v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeAvailability(t *testing.T) {
	c := &Churn{Lifetimes: PaperLifetimes(), OfflineFactor: 0.5}
	rng := rand.New(rand.NewSource(8))
	horizon := sim.Hours(48)
	n := 200
	sessions := c.Plan(rng, n, horizon)
	st := Analyze(sessions, n, horizon)
	if st.Sessions != len(sessions) {
		t.Errorf("Sessions = %d", st.Sessions)
	}
	// Session statistics should track the lognormal (3h mean, 1h median),
	// shortened somewhat by horizon truncation.
	if st.MeanSessionSec < 3600 || st.MeanSessionSec > 4*3600 {
		t.Errorf("mean session = %.0fs, want near 10800", st.MeanSessionSec)
	}
	if st.MedianSessionSec < 1800 || st.MedianSessionSec > 2*3600 {
		t.Errorf("median session = %.0fs, want near 3600", st.MedianSessionSec)
	}
	// OfflineFactor 0.5 means ~2/3 uptime in steady state.
	if st.UptimeFraction < 0.5 || st.UptimeFraction > 0.85 {
		t.Errorf("uptime = %g, want ~2/3", st.UptimeFraction)
	}
	if st.MaxOnline > n || st.MinOnline < 0 {
		t.Errorf("online range [%d,%d] out of bounds", st.MinOnline, st.MaxOnline)
	}
	if st.String() == "" {
		t.Error("String empty")
	}
	// Degenerate inputs.
	empty := Analyze(nil, 0, 0)
	if empty.Sessions != 0 || empty.UptimeFraction != 0 {
		t.Errorf("empty analyze: %+v", empty)
	}
}
