package workload

import (
	"fmt"
	"sort"

	"p2psum/internal/sim"
)

// AvailabilityStats summarizes a churn plan: how much of the horizon peers
// spend online, and how the concurrently-online population evolves. The
// experiments use it to verify that the synthetic churn reproduces the
// Table 3 session statistics before trusting the downstream measurements.
type AvailabilityStats struct {
	Peers   int
	Horizon sim.Time
	// Sessions is the total number of online intervals.
	Sessions int
	// MeanSessionSec / MedianSessionSec describe the observed session
	// lengths (should track the lognormal's 3h mean / 1h median).
	MeanSessionSec   float64
	MedianSessionSec float64
	// UptimeFraction is the mean fraction of the horizon a peer is online.
	UptimeFraction float64
	// MinOnline / MaxOnline bound the concurrently-online population
	// sampled at session boundaries.
	MinOnline int
	MaxOnline int
}

// String renders the stats.
func (a AvailabilityStats) String() string {
	return fmt.Sprintf("peers=%d sessions=%d meanSession=%.0fs medianSession=%.0fs uptime=%.0f%% online=[%d,%d]",
		a.Peers, a.Sessions, a.MeanSessionSec, a.MedianSessionSec, 100*a.UptimeFraction, a.MinOnline, a.MaxOnline)
}

// Analyze computes availability statistics from a churn plan.
func Analyze(sessions []Session, nPeers int, horizon sim.Time) AvailabilityStats {
	st := AvailabilityStats{Peers: nPeers, Horizon: horizon, Sessions: len(sessions)}
	if len(sessions) == 0 || nPeers == 0 || horizon <= 0 {
		return st
	}
	lengths := make([]float64, 0, len(sessions))
	var onlineTotal float64
	type event struct {
		at sim.Time
		d  int
	}
	events := make([]event, 0, 2*len(sessions))
	for _, s := range sessions {
		l := float64(s.End - s.Start)
		lengths = append(lengths, l)
		onlineTotal += l
		events = append(events, event{s.Start, +1}, event{s.End, -1})
	}
	sort.Float64s(lengths)
	var sum float64
	for _, l := range lengths {
		sum += l
	}
	st.MeanSessionSec = sum / float64(len(lengths))
	st.MedianSessionSec = lengths[len(lengths)/2]
	st.UptimeFraction = onlineTotal / (float64(horizon) * float64(nPeers))

	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Ends before starts at equal timestamps (sessions are half-open).
		return events[i].d < events[j].d
	})
	online, min, max := 0, nPeers, 0
	for _, e := range events {
		online += e.d
		if online < min {
			min = online
		}
		if online > max {
			max = online
		}
	}
	st.MinOnline, st.MaxOnline = min, max
	return st
}
