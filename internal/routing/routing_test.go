package routing

import (
	"math/rand"
	"testing"

	"p2psum/internal/bk"
	"p2psum/internal/cells"
	"p2psum/internal/core"
	"p2psum/internal/data"
	"p2psum/internal/p2p"
	"p2psum/internal/query"
	"p2psum/internal/saintetiq"
	"p2psum/internal/sim"
	"p2psum/internal/topology"
	"p2psum/internal/workload"
)

func buildSystem(t *testing.T, n, sps int, seed int64, cfg core.Config) (*core.System, *sim.Engine) {
	t.Helper()
	g, err := topology.BarabasiAlbert(n, 2, nil, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New()
	net := p2p.NewNetwork(e, g, seed)
	sys, err := core.NewSystem(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.ElectSummaryPeers(sps)
	if err := sys.Construct(); err != nil {
		t.Fatal(err)
	}
	return sys, e
}

func oracleFor(sys *core.System, seed int64, frac float64) *Oracle {
	rng := rand.New(rand.NewSource(seed))
	ms := workload.MatchSet(rng, sys.Transport().Len(), frac)
	cur := make(map[p2p.NodeID]bool, len(ms))
	for id := range ms {
		cur[p2p.NodeID(id)] = true
	}
	return &Oracle{Current: cur}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{Balanced: "balanced", Precise: "precise", MaxRecall: "max-recall", Mode(9): "?"} {
		if m.String() != want {
			t.Errorf("Mode(%d) = %q", int(m), m.String())
		}
	}
}

func TestSQRouteFindsAllWithPerfectSummaries(t *testing.T) {
	sys, _ := buildSystem(t, 400, 10, 1, core.DefaultConfig())
	oracle := oracleFor(sys, 2, 0.10)
	r := NewSQRouter(sys)
	res, err := r.Route(5, oracle, 0) // total lookup
	if err != nil {
		t.Fatal(err)
	}
	want := len(oracle.Current)
	if res.Results != want {
		t.Errorf("total lookup found %d of %d matches", res.Results, want)
	}
	if res.Accuracy.Recall() != 1 || res.Accuracy.Precision() != 1 {
		t.Errorf("perfect summaries gave precision %g recall %g", res.Accuracy.Precision(), res.Accuracy.Recall())
	}
	if res.DomainsVisited < 2 {
		t.Errorf("total lookup visited %d domains", res.DomainsVisited)
	}
	if res.Messages <= 0 {
		t.Error("no messages counted")
	}
	// Breakdown sums to total.
	var sum int64
	for _, v := range res.Breakdown {
		sum += v
	}
	if sum != res.Messages {
		t.Errorf("breakdown sums to %d, total is %d", sum, res.Messages)
	}
}

func TestSQRoutePartialLookupStopsEarly(t *testing.T) {
	sys, _ := buildSystem(t, 400, 10, 3, core.DefaultConfig())
	oracle := oracleFor(sys, 4, 0.10)
	r := NewSQRouter(sys)
	full, err := r.Route(5, oracle, 0)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := r.Route(5, oracle, 3)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Results < 3 {
		t.Errorf("partial lookup found %d, want >= 3", partial.Results)
	}
	if partial.Messages >= full.Messages {
		t.Errorf("partial lookup (%d msgs) not cheaper than total (%d msgs)",
			partial.Messages, full.Messages)
	}
	if partial.DomainsVisited > full.DomainsVisited {
		t.Error("partial lookup visited more domains than total")
	}
}

func TestSQRouteNoDomain(t *testing.T) {
	g, err := topology.BarabasiAlbert(20, 2, nil, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	net := p2p.NewNetwork(sim.New(), g, 5)
	sys, err := core.NewSystem(net, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No construction: no domains.
	r := NewSQRouter(sys)
	if _, err := r.Route(3, &Oracle{Current: map[p2p.NodeID]bool{}}, 0); err == nil {
		t.Error("routing without domains accepted")
	}
}

func TestRoutingModesTradeoff(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Alpha = 0.99 // keep staleness, no reconciliation
	sys, e := buildSystem(t, 300, 6, 6, cfg)
	oracle := oracleFor(sys, 7, 0.10)

	// Make a third of the matching peers stale (graceful leaves).
	var stale []p2p.NodeID
	i := 0
	for id := range oracle.Current {
		if i%3 == 0 && sys.Peer(id).Role() == core.RoleClient {
			sys.Leave(id, true)
			stale = append(stale, id)
		}
		i++
	}
	e.Run()
	if len(stale) == 0 {
		t.Skip("no stale peers produced")
	}

	route := func(m Mode) *Result {
		r := NewSQRouter(sys)
		r.Mode = m
		res, err := r.Route(pickClient(t, sys), oracle, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	precise := route(Precise)
	balanced := route(Balanced)
	recall := route(MaxRecall)

	// Precise mode: no false positives at all.
	if precise.Accuracy.FalsePositives != 0 {
		t.Errorf("precise mode produced %d false positives", precise.Accuracy.FalsePositives)
	}
	// MaxRecall mode: no false negatives (every stale partner queried).
	if recall.Accuracy.FalseNegatives > balanced.Accuracy.FalseNegatives {
		t.Errorf("max-recall FNs (%d) exceed balanced (%d)",
			recall.Accuracy.FalseNegatives, balanced.Accuracy.FalseNegatives)
	}
	// MaxRecall pays more messages than precise.
	if recall.Messages < precise.Messages {
		t.Errorf("max-recall (%d msgs) cheaper than precise (%d)", recall.Messages, precise.Messages)
	}
}

func pickClient(t *testing.T, sys *core.System) p2p.NodeID {
	t.Helper()
	for _, id := range sys.Transport().OnlineIDs() {
		if sys.Peer(id).Role() == core.RoleClient && sys.DomainOf(id) >= 0 {
			return id
		}
	}
	t.Fatal("no client found")
	return 0
}

func TestFloodQueryBaseline(t *testing.T) {
	sys, _ := buildSystem(t, 500, 10, 8, core.DefaultConfig())
	net := sys.Transport()
	oracle := oracleFor(sys, 9, 0.10)
	res := FloodQuery(net, 5, 3, oracle, -1)
	if res.Results == 0 {
		t.Error("flooding found nothing on a BA graph with hubs")
	}
	if res.Messages < int64(res.Results) {
		t.Error("message count below response count")
	}
	// Flooding has perfect precision (only matching peers respond) but
	// bounded recall (TTL horizon).
	if res.Accuracy.FalsePositives != 0 {
		t.Error("flooding produced false positives")
	}
}

func TestCentralizedQueryBaseline(t *testing.T) {
	sys, _ := buildSystem(t, 200, 5, 10, core.DefaultConfig())
	oracle := oracleFor(sys, 11, 0.10)
	res := CentralizedQuery(sys.Transport(), oracle)
	want := len(oracle.Current)
	if res.Results != want {
		t.Errorf("centralized found %d of %d", res.Results, want)
	}
	// 1 + matches + responses.
	if res.Messages != int64(1+2*want) {
		t.Errorf("centralized cost = %d, want %d", res.Messages, 1+2*want)
	}
	if res.Accuracy.Precision() != 1 || res.Accuracy.Recall() != 1 {
		t.Error("complete index must be exact")
	}
}

// TestFigure7Ordering is the integration-level headline check: on the same
// network and workload, centralized < SQ < flooding for message cost, while
// SQ achieves full recall and flooding does not.
func TestFigure7Ordering(t *testing.T) {
	sys, _ := buildSystem(t, 1000, 10, 12, core.DefaultConfig())
	net := sys.Transport()
	oracle := oracleFor(sys, 13, 0.10)

	central := CentralizedQuery(net, oracle)
	r := NewSQRouter(sys)
	sq, err := r.Route(pickClient(t, sys), oracle, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Like SQ, flooding must satisfy the total-lookup stop condition.
	flood := FloodQuery(net, pickClient(t, sys), 3, oracle, len(oracle.Current))

	if !(central.Messages < sq.Messages) {
		t.Errorf("centralized (%d) not cheaper than SQ (%d)", central.Messages, sq.Messages)
	}
	if !(sq.Messages < flood.Messages) {
		t.Errorf("SQ (%d) not cheaper than flooding (%d)", sq.Messages, flood.Messages)
	}
	if sq.Accuracy.Recall() != 1 {
		t.Errorf("SQ recall = %g", sq.Accuracy.Recall())
	}
	if flood.Accuracy.Recall() >= 1 && flood.Results == len(oracle.Current) {
		t.Log("flooding reached everything (possible on small graphs); ordering still checked")
	}
}

func TestRouteDataApproximateAnswer(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.DataLevel = true
	cfg.BK = bk.Medical()

	g, err := topology.BarabasiAlbert(30, 2, nil, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New()
	net := p2p.NewNetwork(e, g, 14)
	sys, err := core.NewSystem(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := cells.NewMapper(cfg.BK, data.PatientSchema())
	if err != nil {
		t.Fatal(err)
	}
	gen := data.NewPatientGenerator(15, nil)
	for i := 0; i < 30; i++ {
		st := cells.NewStore(mapper)
		st.AddRelation(gen.Generate("db", 30))
		tr := saintetiq.New(cfg.BK, cfg.TreeCfg)
		if err := tr.IncorporateStore(st, saintetiq.PeerID(i)); err != nil {
			t.Fatal(err)
		}
		sys.SetLocalTree(p2p.NodeID(i), tr)
	}
	sys.ElectSummaryPeers(1)
	if err := sys.Construct(); err != nil {
		t.Fatal(err)
	}

	q := query.Query{
		Select: []string{"age"},
		Where:  []query.Clause{{Attr: "disease", Labels: []string{"measles"}}},
	}
	da, err := RouteData(sys, 3, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(da.Peers) == 0 {
		t.Fatal("no peers localized for a common disease")
	}
	if da.Answer == nil || len(da.Answer.Classes) == 0 {
		t.Fatal("no approximate answer")
	}
	// Measles patients are children in the generator: answer mentions
	// young.
	found := false
	for _, c := range da.Answer.Classes {
		for _, lab := range c.Answers["age"] {
			if lab == "young" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("measles answer misses 'young': %v", da.Answer)
	}
	if da.Visited <= 0 {
		t.Error("selection visited no nodes")
	}
}

func TestRouteDataErrors(t *testing.T) {
	sys, _ := buildSystem(t, 50, 2, 16, core.DefaultConfig()) // protocol level
	q := query.Query{Where: []query.Clause{{Attr: "disease", Labels: []string{"malaria"}}}}
	if _, err := RouteData(sys, 3, q); err == nil {
		t.Error("data routing without data level accepted")
	}
}

func TestPeersOf(t *testing.T) {
	got := PeersOf([]saintetiq.PeerID{3, 1})
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("PeersOf = %v", got)
	}
}

func TestRunWorkload(t *testing.T) {
	sys, _ := buildSystem(t, 300, 6, 20, core.DefaultConfig())
	router := NewSQRouter(sys)
	res, err := RunWorkload(sys, router, WorkloadOptions{Queries: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 10 || res.SQMessages.N() != 10 {
		t.Fatalf("aggregation wrong: %+v", res)
	}
	if res.Accuracy.Recall() != 1 {
		t.Errorf("fresh-summary workload recall = %g", res.Accuracy.Recall())
	}
	if res.SQMessages.Mean() <= res.CentralCost.Mean() {
		t.Error("SQ cheaper than the ideal index?")
	}
	if res.SQMessages.Mean() >= res.FloodMessages.Mean() {
		t.Errorf("SQ (%g) not cheaper than flooding (%g)", res.SQMessages.Mean(), res.FloodMessages.Mean())
	}
	if res.String() == "" {
		t.Error("String empty")
	}
	if _, err := RunWorkload(sys, router, WorkloadOptions{Queries: 0}); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestRunWorkloadLocality(t *testing.T) {
	sys, _ := buildSystem(t, 300, 6, 22, core.DefaultConfig())
	router := NewSQRouter(sys)
	res, err := RunWorkload(sys, router, WorkloadOptions{Queries: 8, Seed: 23, Locality: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// Group locality concentrates matches; SQ must still find them all.
	if res.Accuracy.Recall() != 1 {
		t.Errorf("clustered workload recall = %g", res.Accuracy.Recall())
	}
}
