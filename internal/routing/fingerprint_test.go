package routing

import (
	"fmt"
	"testing"

	"p2psum/internal/query"
)

func fpQuery() query.Query {
	return query.Query{
		Select: []string{"age", "bmi"},
		Where: []query.Clause{
			{Attr: "disease", Labels: []string{"anorexia", "malaria"}},
			{Attr: "sex", Labels: []string{"female"}},
		},
	}
}

// reordered is fpQuery with clauses and labels permuted — semantically the
// same query.
func reordered() query.Query {
	return query.Query{
		Select: []string{"age", "bmi"},
		Where: []query.Clause{
			{Attr: "sex", Labels: []string{"female"}},
			{Attr: "disease", Labels: []string{"malaria", "anorexia"}},
		},
	}
}

func TestHashQueryOrderInvariance(t *testing.T) {
	a, b := fpQuery(), reordered()
	if HashQuery(a) != HashQuery(b) {
		t.Fatalf("reordered query hashes differ: %x vs %x", HashQuery(a), HashQuery(b))
	}
	if !SameQuery(a, b) {
		t.Fatal("SameQuery rejects a reordering of the same query")
	}
	if na, nb := NormalizeQuery(a), NormalizeQuery(b); fmt.Sprint(na) != fmt.Sprint(nb) {
		t.Fatalf("normal forms differ:\n%v\n%v", na, nb)
	}
}

func TestHashQuerySeparates(t *testing.T) {
	base := fpQuery()
	variants := []query.Query{
		{Select: []string{"bmi", "age"}, Where: base.Where}, // select order is significant
		{Select: []string{"agebmi"}, Where: base.Where},     // concatenation is not the same select
		{Select: base.Select, Where: base.Where[:1]},        // dropped clause
		{Select: base.Select, Where: []query.Clause{base.Where[0], {Attr: "sex", Labels: []string{"male"}}}},
	}
	for i, v := range variants {
		if SameQuery(base, v) {
			t.Errorf("variant %d compares equal to base", i)
		}
		if HashQuery(base) == HashQuery(v) {
			t.Errorf("variant %d collides with base", i)
		}
	}
}

func TestFingerprintAllocFree(t *testing.T) {
	a, b := fpQuery(), reordered()
	if n := testing.AllocsPerRun(100, func() {
		if HashQuery(a) != HashQuery(b) || !SameQuery(a, b) {
			t.Fatal("fingerprint mismatch")
		}
	}); n != 0 {
		t.Fatalf("fingerprint path allocates %.1f per run, want 0", n)
	}
}
