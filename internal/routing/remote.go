package routing

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"p2psum/internal/cells"
	"p2psum/internal/core"
	"p2psum/internal/p2p"
	"p2psum/internal/query"
	"p2psum/internal/saintetiq"
	"p2psum/internal/wire"
)

// Remote query routing: the data-level §5.2 services evaluated by sending
// the query to the origin's summary peer as a real protocol message — the
// path a deployed overlay needs when the summary peer lives in another
// process (p2p.TCPTransport). RouteData remains the in-process fast path;
// QueryService is the message-borne one. Both payloads are registered with
// the wire codec layer, so queries and their approximate answers are
// byte-accounted exactly like every other protocol message.

// QueryPayload ships a flexible query to a summary peer.
type QueryPayload struct {
	// QID correlates the response with the asking driver.
	QID uint64
	// Query is the reformulated flexible query (§5.1).
	Query query.Query
}

// QueryResponsePayload carries a domain's answer back to the originator.
type QueryResponsePayload struct {
	// QID echoes the request's correlation id.
	QID uint64
	// Err is the evaluation failure, if any ("" on success).
	Err string
	// Peers is PQ: the peers the global summary designates (§5.2.1).
	Peers []p2p.NodeID
	// Visited is the number of summary nodes the selection explored.
	Visited int
	// Answer is the approximate answer computed in the summary domain
	// (§5.2.2); nil when Err is set.
	Answer *query.Answer
}

func init() {
	wire.Register(MsgQuery, wire.PayloadCodec{Encode: encodeQuery, Decode: decodeQuery})
	wire.Register(MsgQueryResponse, wire.PayloadCodec{Encode: encodeQueryResponse, Decode: decodeQueryResponse})
}

// EncodeFlexQuery appends a flexible query's wire form — shared by the
// MsgQuery payload codec and the gateway's client framing.
func EncodeFlexQuery(e *wire.Enc, q query.Query) {
	e.Strings(q.Select)
	e.Uvarint(uint64(len(q.Where)))
	for _, c := range q.Where {
		e.String(c.Attr)
		e.Strings(c.Labels)
	}
}

// DecodeFlexQuery reads the form EncodeFlexQuery writes; on malformed
// input it returns the zero query and leaves the error on d.
func DecodeFlexQuery(d *wire.Dec) query.Query {
	q := query.Query{Select: d.Strings()}
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		q.Where = append(q.Where, query.Clause{Attr: d.String(), Labels: d.Strings()})
		if d.Err() != nil {
			return query.Query{}
		}
	}
	return q
}

func encodeQuery(e *wire.Enc, payload any) error {
	p, ok := payload.(QueryPayload)
	if !ok {
		return fmt.Errorf("routing: %s codec got %T", MsgQuery, payload)
	}
	e.Uvarint(p.QID)
	EncodeFlexQuery(e, p.Query)
	return nil
}

func decodeQuery(data []byte) (any, error) {
	d := wire.NewDec(data)
	p := QueryPayload{QID: d.Uvarint(), Query: DecodeFlexQuery(d)}
	return p, d.Done()
}

// keyScratch pools the sorted-key scratch of the answer encoders. Response
// encoding runs once per query answered (and once per cached gateway
// entry), and the per-map key sort was the answer path's last
// per-response allocation.
var keyScratch = sync.Pool{New: func() any { s := make([]string, 0, 16); return &s }}

// appendSortedKeys fills buf with m's keys in ascending order.
func appendSortedKeys[V any](buf []string, m map[string]V) []string {
	buf = buf[:0]
	for k := range m {
		buf = append(buf, k)
	}
	sort.Strings(buf)
	return buf
}

// encodeLabelSets writes a map attr -> labels with sorted keys, so equal
// payloads encode to equal bytes. The key sort runs on pooled scratch.
func encodeLabelSets(e *wire.Enc, m map[string][]string) {
	sp := keyScratch.Get().(*[]string)
	keys := appendSortedKeys(*sp, m)
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.String(k)
		e.Strings(m[k])
	}
	*sp = keys[:0]
	keyScratch.Put(sp)
}

func decodeLabelSets(d *wire.Dec) map[string][]string {
	n := d.Uvarint()
	if d.Err() != nil || n == 0 {
		return nil
	}
	// No capacity hint: n comes off the wire, and a corrupt count must
	// fail at the first missing element, not pre-allocate.
	m := make(map[string][]string)
	for i := uint64(0); i < n; i++ {
		k := d.String()
		m[k] = d.Strings()
		if d.Err() != nil {
			return nil
		}
	}
	return m
}

func encodeAnswer(e *wire.Enc, a *query.Answer) {
	if a == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	EncodeFlexQuery(e, a.Query)
	e.Uvarint(uint64(len(a.Classes)))
	for _, c := range a.Classes {
		encodeLabelSets(e, c.Interpretation)
		encodeLabelSets(e, c.Answers)
		e.Float64(c.Weight)
		e.Uvarint(uint64(len(c.Peers)))
		for _, p := range c.Peers {
			e.Varint(int64(p))
		}
		sp := keyScratch.Get().(*[]string)
		mkeys := appendSortedKeys(*sp, c.Measures)
		e.Uvarint(uint64(len(mkeys)))
		for _, k := range mkeys {
			m := c.Measures[k]
			e.String(k)
			e.Float64(m.Weight)
			e.Float64(m.Min)
			e.Float64(m.Max)
			e.Float64(m.Sum)
			e.Float64(m.SumSq)
		}
		*sp = mkeys[:0]
		keyScratch.Put(sp)
	}
}

func decodeAnswer(d *wire.Dec) *query.Answer {
	if !d.Bool() {
		return nil
	}
	a := &query.Answer{Query: DecodeFlexQuery(d)}
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		c := query.Class{
			Interpretation: decodeLabelSets(d),
			Answers:        decodeLabelSets(d),
			Weight:         d.Float64(),
		}
		peerCount := d.Uvarint()
		for j := uint64(0); j < peerCount; j++ {
			c.Peers = append(c.Peers, saintetiq.PeerID(d.Varint()))
			if d.Err() != nil {
				return nil
			}
		}
		mCount := d.Uvarint()
		for j := uint64(0); j < mCount; j++ {
			if c.Measures == nil {
				c.Measures = make(map[string]cells.Measure)
			}
			k := d.String()
			c.Measures[k] = cells.Measure{
				Weight: d.Float64(),
				Min:    d.Float64(),
				Max:    d.Float64(),
				Sum:    d.Float64(),
				SumSq:  d.Float64(),
			}
			if d.Err() != nil {
				return nil
			}
		}
		a.Classes = append(a.Classes, c)
		if d.Err() != nil {
			return nil
		}
	}
	return a
}

// EncodeDataAnswer appends a DataAnswer's wire form — peers, visited
// count, approximate answer — the same layout the MsgQueryResponse payload
// carries after its QID and error fields. The gateway encodes a cached
// entry once through this and replays the bytes on every hit.
func EncodeDataAnswer(e *wire.Enc, a *DataAnswer) {
	e.Uvarint(uint64(len(a.Peers)))
	for _, id := range a.Peers {
		e.Varint(int64(id))
	}
	e.Varint(int64(a.Visited))
	encodeAnswer(e, a.Answer)
}

// DecodeDataAnswer reads the form EncodeDataAnswer writes.
func DecodeDataAnswer(d *wire.Dec) (*DataAnswer, error) {
	a := &DataAnswer{}
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		a.Peers = append(a.Peers, p2p.NodeID(d.Varint()))
		if d.Err() != nil {
			return nil, d.Err()
		}
	}
	a.Visited = int(d.Varint())
	a.Answer = decodeAnswer(d)
	return a, d.Err()
}

func encodeQueryResponse(e *wire.Enc, payload any) error {
	p, ok := payload.(QueryResponsePayload)
	if !ok {
		return fmt.Errorf("routing: %s codec got %T", MsgQueryResponse, payload)
	}
	e.Uvarint(p.QID)
	e.String(p.Err)
	e.Uvarint(uint64(len(p.Peers)))
	for _, id := range p.Peers {
		e.Varint(int64(id))
	}
	e.Varint(int64(p.Visited))
	encodeAnswer(e, p.Answer)
	return nil
}

func decodeQueryResponse(data []byte) (any, error) {
	d := wire.NewDec(data)
	p := QueryResponsePayload{QID: d.Uvarint(), Err: d.String()}
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		p.Peers = append(p.Peers, p2p.NodeID(d.Varint()))
		if d.Err() != nil {
			return nil, d.Err()
		}
	}
	p.Visited = int(d.Varint())
	p.Answer = decodeAnswer(d)
	return p, d.Done()
}

// QueryService evaluates MsgQuery messages at summary peers and correlates
// MsgQueryResponse messages back to asking drivers. It installs itself as
// the core system's extension handler, so the evaluation runs on the
// summary peer's dispatch group — serialized with the domain's merges and
// reconciliations — in whichever process hosts the summary peer.
type QueryService struct {
	sys *core.System

	mu      sync.Mutex
	nextQID uint64
	pending map[uint64]chan QueryResponsePayload
}

// NewQueryService wires the service onto the system (replacing any
// previously installed extension handler).
func NewQueryService(sys *core.System) *QueryService {
	qs := &QueryService{sys: sys, pending: make(map[uint64]chan QueryResponsePayload)}
	sys.SetExtension(qs.handle)
	return qs
}

// handle runs on the receiving peer's dispatch group.
func (qs *QueryService) handle(p *core.Peer, msg *p2p.Message) {
	switch msg.Type {
	case MsgQuery:
		pl, ok := msg.Payload.(QueryPayload)
		if !ok {
			return
		}
		resp := QueryResponsePayload{QID: pl.QID}
		st := p.SummaryStore()
		switch {
		case p.Role() != core.RoleSummaryPeer:
			resp.Err = "not a summary peer"
		case st == nil:
			resp.Err = "domain has no data-level global summary"
		default:
			sa, err := query.AnswerStore(st, pl.Query)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Peers = PeersOf(sa.Peers)
				resp.Visited = sa.Visited
				resp.Answer = sa.Answer
			}
		}
		qs.sys.Transport().SendNew(MsgQueryResponse, p.ID(), msg.From, 0, resp)
	case MsgQueryResponse:
		pl, ok := msg.Payload.(QueryResponsePayload)
		if !ok {
			return
		}
		qs.mu.Lock()
		ch := qs.pending[pl.QID]
		delete(qs.pending, pl.QID)
		qs.mu.Unlock()
		if ch != nil {
			ch <- pl
		}
	}
}

// respChans pools the capacity-1 channels Ask correlates answers on: one
// Get per query instead of one allocation per query. A channel returns to
// the pool only when it is provably empty and unreachable from the
// handler — after a successful receive, or after a timeout that found the
// query still registered (so no handler ever claimed it).
var respChans = sync.Pool{New: func() any { return make(chan QueryResponsePayload, 1) }}

// Ask routes q from origin to its domain's summary peer as a protocol
// message and blocks (driver-side; never call from a handler) until the
// answer returns or the timeout elapses. When the summary peer is hosted
// in this very process the message loops back through the local dispatch
// engine — one code path for both deployments.
func (qs *QueryService) Ask(origin p2p.NodeID, q query.Query, timeout time.Duration) (*DataAnswer, error) {
	sp := qs.sys.DomainOf(origin)
	if sp < 0 {
		return nil, fmt.Errorf("routing: origin %d has no domain", origin)
	}
	ch := respChans.Get().(chan QueryResponsePayload)
	qs.mu.Lock()
	qs.nextQID++
	qid := qs.nextQID
	qs.pending[qid] = ch
	qs.mu.Unlock()
	qs.sys.Transport().SendNew(MsgQuery, origin, sp, 0, QueryPayload{QID: qid, Query: q})
	timer := time.NewTimer(timeout)
	select {
	case resp := <-ch:
		timer.Stop()
		respChans.Put(ch)
		if resp.Err != "" {
			return nil, errors.New("routing: " + resp.Err)
		}
		return &DataAnswer{Peers: resp.Peers, Answer: resp.Answer, Visited: resp.Visited}, nil
	case <-timer.C:
		qs.mu.Lock()
		_, unclaimed := qs.pending[qid]
		delete(qs.pending, qid)
		qs.mu.Unlock()
		if unclaimed {
			// The handler never saw the query: nothing can ever send on
			// this channel, so it is safe to reuse.
			respChans.Put(ch)
		}
		// Otherwise the handler claimed the channel concurrently with the
		// timeout and a buffered send is (or soon will be) in flight; the
		// channel is abandoned to the GC rather than pooled with a stale
		// answer inside.
		return nil, fmt.Errorf("routing: query %d to summary peer %d timed out after %v", qid, sp, timeout)
	}
}
