package routing

import (
	"math"
	"reflect"
	"testing"

	"p2psum/internal/cells"
	"p2psum/internal/core"
	"p2psum/internal/liveness"
	"p2psum/internal/p2p"
	"p2psum/internal/query"
	"p2psum/internal/saintetiq"
	"p2psum/internal/wire"
)

// Codec tests for the remote-query payloads, plus the registry-wide
// coverage gate: because this package imports core, every codec of the
// protocol stack is registered here, and the master test fails if a
// message type ever gets registered without joining the round-trip and
// truncation suites.

func sampleQuery() query.Query {
	return query.Query{
		Select: []string{"age", "bmi"},
		Where: []query.Clause{
			{Attr: "disease", Labels: []string{"malaria", "typhoid"}},
			{Attr: "age", Labels: []string{"young"}},
		},
	}
}

func sampleAnswer() *query.Answer {
	return &query.Answer{
		Query: sampleQuery(),
		Classes: []query.Class{
			{
				Interpretation: map[string][]string{"disease": {"malaria"}},
				Answers:        map[string][]string{"age": {"young", "adult"}},
				Weight:         12.5,
				Peers:          []saintetiq.PeerID{1, 4, 9},
				Measures: map[string]cells.Measure{
					"age": {Weight: 12.5, Min: 14, Max: 38, Sum: 300, SumSq: 8000},
				},
			},
			{
				Interpretation: map[string][]string{"disease": {"typhoid"}},
				Answers:        map[string][]string{"age": {"old"}},
				Weight:         3,
				Peers:          []saintetiq.PeerID{2},
				Measures: map[string]cells.Measure{
					"bmi": {Weight: 3, Min: math.Inf(1), Max: math.Inf(-1)},
				},
			},
		},
	}
}

func TestQueryCodecRoundTrip(t *testing.T) {
	c, _ := wire.Lookup(MsgQuery)
	p := QueryPayload{QID: 42, Query: sampleQuery()}
	var e wire.Enc
	if err := c.Encode(&e, p); err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round-trip:\nwant %+v\ngot  %+v", p, got)
	}
}

func TestQueryResponseCodecRoundTrip(t *testing.T) {
	c, _ := wire.Lookup(MsgQueryResponse)
	for i, p := range []QueryResponsePayload{
		{QID: 7, Err: "not a summary peer"},
		{QID: 8, Peers: []p2p.NodeID{3, 5, 8}, Visited: 17, Answer: sampleAnswer()},
		{QID: 9, Answer: &query.Answer{Query: sampleQuery()}},
	} {
		var e wire.Enc
		if err := c.Encode(&e, p); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := c.Decode(e.Bytes())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("case %d round-trip:\nwant %+v\ngot  %+v", i, p, got)
		}
	}
}

// registeredSamples maps every message type the protocol stack registers
// to a representative payload. TestEveryRegisteredTypeCovered fails when a
// new registration is missing here, so round-trip and truncation coverage
// can never silently rot.
func registeredSamples() map[string]any {
	return map[string]any{
		core.MsgSumpeer:  core.SumpeerPayload{SP: 1, Round: 2, Hops: 1},
		core.MsgLocalsum: core.LocalsumPayload{Rejoin: true},
		core.MsgPush:     core.PushPayload{V: core.Stale},
		core.MsgReconcile: core.ReconcilePayload{
			SP: 2, Seq: 3, Remaining: []p2p.NodeID{4}, Merged: []p2p.NodeID{5, 6},
			Gossip: &core.GossipTail{
				Delta: []liveness.Change{{ID: 3, E: liveness.Entry{State: liveness.Suspect, Inc: 2, SP: 2}}},
				Ver:   8, Ack: 5,
			},
		},
		core.MsgGossip: core.GossipPayload{
			Tail: core.GossipTail{
				Full: true,
				Entries: []liveness.Entry{
					{State: liveness.Alive, Inc: 1, SP: 0},
					{State: liveness.Dead, Inc: 9, SP: liveness.NoSP},
				},
				Ver: 12, Ack: 4,
			},
			Reply: true,
		},
		core.MsgElect:    core.ElectPayload{Dead: 7, Successor: 3},
		MsgQuery:         QueryPayload{QID: 1, Query: sampleQuery()},
		MsgQueryResponse: QueryResponsePayload{QID: 1, Peers: []p2p.NodeID{2}, Answer: sampleAnswer()},
	}
}

// TestEveryRegisteredTypeCovered: each registered codec has a sample, each
// sample round-trips, and every strict prefix of its encoding fails to
// decode. Together with the richer per-type suites this discharges the
// "codec round-trip tests cover every registered message type" gate.
func TestEveryRegisteredTypeCovered(t *testing.T) {
	samples := registeredSamples()
	for _, typ := range wire.Types() {
		sample, ok := samples[typ]
		if !ok {
			t.Errorf("registered message type %q has no codec-test sample; add one to registeredSamples", typ)
			continue
		}
		c, _ := wire.Lookup(typ)
		var e wire.Enc
		if err := c.Encode(&e, sample); err != nil {
			t.Errorf("%s: encode: %v", typ, err)
			continue
		}
		full := e.Bytes()
		got, err := c.Decode(full)
		if err != nil {
			t.Errorf("%s: decode: %v", typ, err)
			continue
		}
		if !reflect.DeepEqual(got, sample) {
			t.Errorf("%s: round-trip mismatch:\nwant %+v\ngot  %+v", typ, sample, got)
		}
		for cut := 0; cut < len(full); cut++ {
			if _, err := c.Decode(full[:cut]); err == nil {
				t.Errorf("%s: truncation at %d/%d decoded successfully", typ, cut, len(full))
			}
		}
	}
}

// TestSharedDecodeEveryRegisteredType frames each sample payload and
// decodes the frame through both the copying and the borrowing decoder,
// feeding each payload back through the type's codec. The results must
// match — and must keep matching after the borrowed buffer is clobbered,
// which is exactly what the TCP read loop does when it reuses its read
// buffer: the PayloadCodec contract says Decode retains nothing.
func TestSharedDecodeEveryRegisteredType(t *testing.T) {
	samples := registeredSamples()
	for _, typ := range wire.Types() {
		sample, ok := samples[typ]
		if !ok {
			continue // TestEveryRegisteredTypeCovered reports the gap
		}
		c, _ := wire.Lookup(typ)
		var e wire.Enc
		if err := c.Encode(&e, sample); err != nil {
			t.Fatalf("%s: encode: %v", typ, err)
		}
		f := &wire.Frame{Type: typ, From: 3, To: 9, TTL: 1, HasPayload: true}
		f.Payload = e.Bytes()
		buf := f.Encode()

		fromCopy, err := wire.DecodeFrame(buf)
		if err != nil {
			t.Fatalf("%s: copying frame decode: %v", typ, err)
		}
		shared, err := wire.DecodeFrameShared(buf)
		if err != nil {
			t.Fatalf("%s: shared frame decode: %v", typ, err)
		}
		if shared.Type != typ {
			t.Fatalf("%s: shared decode canonicalized Type to %q", typ, shared.Type)
		}
		wantPayload, err := c.Decode(fromCopy.Payload)
		if err != nil {
			t.Fatalf("%s: payload decode (copy): %v", typ, err)
		}
		gotPayload, err := c.Decode(shared.Payload)
		if err != nil {
			t.Fatalf("%s: payload decode (shared): %v", typ, err)
		}
		if !reflect.DeepEqual(gotPayload, wantPayload) {
			t.Fatalf("%s: shared and copying decode disagree:\nwant %+v\ngot  %+v", typ, wantPayload, gotPayload)
		}
		// Clobber the frame buffer the shared decode borrowed from: a
		// codec that retained borrowed bytes now shows garbage.
		for i := range buf {
			buf[i] ^= 0xFF
		}
		if !reflect.DeepEqual(gotPayload, wantPayload) {
			t.Fatalf("%s: codec retained borrowed payload bytes", typ)
		}
	}
	for typ := range samples {
		if !wire.Registered(typ) {
			t.Errorf("sample %q has no registered codec", typ)
		}
	}
}
