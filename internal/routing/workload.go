package routing

import (
	"fmt"
	"math/rand"

	"p2psum/internal/core"
	"p2psum/internal/p2p"
	"p2psum/internal/stats"
	"p2psum/internal/workload"
)

// WorkloadResult aggregates a batch of routed queries (the paper evaluates
// 200-query workloads, Table 3).
type WorkloadResult struct {
	Queries        int
	SQMessages     *stats.Running
	FloodMessages  *stats.Running
	CentralCost    *stats.Running
	DomainsVisited *stats.Running
	Accuracy       stats.Accuracy
}

// String renders the aggregate.
func (w *WorkloadResult) String() string {
	return fmt.Sprintf("queries=%d sq=%.1f flood=%.1f central=%.1f domains=%.1f precision=%.3f recall=%.3f",
		w.Queries, w.SQMessages.Mean(), w.FloodMessages.Mean(), w.CentralCost.Mean(),
		w.DomainsVisited.Mean(), w.Accuracy.Precision(), w.Accuracy.Recall())
}

// WorkloadOptions configures RunWorkload.
type WorkloadOptions struct {
	// Queries is the number of queries to route.
	Queries int
	// HitFraction is the Table 3 match rate (default 0.10).
	HitFraction float64
	// Required results per query; <= 0 means total lookup.
	Required int
	// FloodTTL is the baseline's initial TTL (default 3).
	FloodTTL int
	// Locality switches to the clustered match sets of §5.2.2 (group
	// locality) with the given strength in (0,1]; zero draws uniformly.
	Locality float64
	// Seed drives origins and match sets.
	Seed int64
}

// RunWorkload routes a whole query workload through the SQ router and the
// two baselines on the same system, aggregating costs and accuracy.
func RunWorkload(sys *core.System, router *SQRouter, opts WorkloadOptions) (*WorkloadResult, error) {
	if opts.Queries <= 0 {
		return nil, fmt.Errorf("routing: workload needs queries > 0")
	}
	if opts.HitFraction <= 0 {
		opts.HitFraction = 0.10
	}
	if opts.FloodTTL <= 0 {
		opts.FloodTTL = 3
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	net := sys.Transport()
	n := net.Len()

	res := &WorkloadResult{
		Queries:        opts.Queries,
		SQMessages:     stats.NewRunning(),
		FloodMessages:  stats.NewRunning(),
		CentralCost:    stats.NewRunning(),
		DomainsVisited: stats.NewRunning(),
	}
	for q := 0; q < opts.Queries; q++ {
		var ms map[int]bool
		if opts.Locality > 0 {
			ms = workload.ClusteredMatchSet(rng, n, opts.HitFraction, opts.Locality)
		} else {
			ms = workload.MatchSet(rng, n, opts.HitFraction)
		}
		oracle := &Oracle{Current: make(map[p2p.NodeID]bool, len(ms))}
		for id := range ms {
			oracle.Current[p2p.NodeID(id)] = true
		}
		origin := randomOnlineClient(sys, rng)
		required := opts.Required
		if required <= 0 {
			required = len(ms)
		}

		sq, err := router.Route(origin, oracle, required)
		if err != nil {
			return nil, err
		}
		res.SQMessages.Observe(float64(sq.Messages))
		res.DomainsVisited.Observe(float64(sq.DomainsVisited))
		res.Accuracy.Merge(sq.Accuracy)

		res.FloodMessages.Observe(float64(FloodQuery(net, origin, opts.FloodTTL, oracle, required).Messages))
		res.CentralCost.Observe(float64(CentralizedQuery(net, oracle).Messages))
	}
	return res, nil
}

func randomOnlineClient(sys *core.System, rng *rand.Rand) p2p.NodeID {
	ids := sys.Transport().OnlineIDs()
	for tries := 0; tries < 1000; tries++ {
		id := ids[rng.Intn(len(ids))]
		if sys.Peer(id).Role() == core.RoleClient && sys.DomainOf(id) >= 0 {
			return id
		}
	}
	return ids[0]
}
