package routing

import (
	"sort"

	"p2psum/internal/query"
)

// Query fingerprints for the serving edge. A cache in front of
// query.AnswerStore needs a key that is stable under the reorderings that
// leave a flexible query's meaning unchanged: the WHERE part is a
// conjunction of clauses (order-free) and each clause's label list is a
// disjunction of descriptors (order-free). HashQuery folds those orderings
// out by combining clause and label hashes commutatively; SameQuery is the
// allocation-free semantic equality a cache runs to rule out hash
// collisions before serving an entry; NormalizeQuery produces the
// canonical sorted form for storage, logging and tests. SELECT order stays
// significant everywhere — it is the projection order of the answer.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashString folds s into a running FNV-1a hash without allocating.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// mix finalizes a raw hash (splitmix64) so that commutative sums of mixed
// values still spread over the full word.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashQuery returns a 64-bit fingerprint of q that is identical for every
// clause/label reordering of the same query and allocation-free (it runs
// on the cache-hit fast path). Duplicate labels inside a clause do change
// the hash — two spellings that differ only by duplicates cache under
// separate keys, which costs a duplicate entry, never a wrong answer
// (SameQuery guards every lookup).
func HashQuery(q query.Query) uint64 {
	h := uint64(fnvOffset)
	for _, s := range q.Select {
		h = hashString(h, s)
		h = h*fnvPrime ^ 0x1f // separator: ("a","b") != ("ab")
	}
	var where uint64
	for _, c := range q.Where {
		var labels uint64
		for _, l := range c.Labels {
			labels += mix(hashString(fnvOffset, l))
		}
		where += mix(hashString(fnvOffset, c.Attr) + labels)
	}
	return mix(h ^ where)
}

// SameQuery reports whether a and b are the same flexible query up to
// clause order and label order within a clause, without allocating. Beyond
// 64 WHERE clauses the clause matching falls back to positional
// comparison (labels still order-free) — far past any query this system
// produces.
func SameQuery(a, b query.Query) bool {
	if len(a.Select) != len(b.Select) || len(a.Where) != len(b.Where) {
		return false
	}
	for i := range a.Select {
		if a.Select[i] != b.Select[i] {
			return false
		}
	}
	if len(a.Where) > 64 {
		for i := range a.Where {
			if !sameClause(a.Where[i], b.Where[i]) {
				return false
			}
		}
		return true
	}
	var used uint64
	for _, ca := range a.Where {
		found := false
		for j := range b.Where {
			if used&(1<<j) != 0 {
				continue
			}
			if sameClause(ca, b.Where[j]) {
				used |= 1 << j
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// sameClause compares two clauses as (attr, label set) without allocating.
func sameClause(a, b query.Clause) bool {
	if a.Attr != b.Attr || len(a.Labels) != len(b.Labels) {
		return false
	}
	return labelsSubset(a.Labels, b.Labels) && labelsSubset(b.Labels, a.Labels)
}

// labelsSubset reports whether every label of sub occurs in super.
func labelsSubset(sub, super []string) bool {
	for _, l := range sub {
		ok := false
		for _, m := range super {
			if l == m {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// NormalizeQuery returns a canonical copy of q: labels sorted and
// deduplicated inside each clause, clauses sorted by attribute then label
// list. Two queries equal under SameQuery normalize identically (after
// label deduplication). It allocates — use it at the edges (HTTP adapter,
// logs, tests), not on the hit path.
func NormalizeQuery(q query.Query) query.Query {
	out := query.Query{Select: append([]string(nil), q.Select...)}
	out.Where = make([]query.Clause, len(q.Where))
	for i, c := range q.Where {
		labels := append([]string(nil), c.Labels...)
		sort.Strings(labels)
		dedup := labels[:0]
		for _, l := range labels {
			if len(dedup) == 0 || dedup[len(dedup)-1] != l {
				dedup = append(dedup, l)
			}
		}
		out.Where[i] = query.Clause{Attr: c.Attr, Labels: dedup}
	}
	sort.Slice(out.Where, func(i, j int) bool {
		a, b := out.Where[i], out.Where[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		for k := 0; k < len(a.Labels) && k < len(b.Labels); k++ {
			if a.Labels[k] != b.Labels[k] {
				return a.Labels[k] < b.Labels[k]
			}
		}
		return len(a.Labels) < len(b.Labels)
	})
	return out
}
