// Package routing implements query routing over summaries (paper §5.2) and
// the two baselines of the Figure 7 comparison: the centralized index and
// pure Gnutella flooding with TTL = 3 (§6.2.3).
//
// The SQ (summary querying) router follows the paper's flow: the query goes
// to the originator's summary peer, the global summary yields the relevant
// peers PQ, the query is sent to them directly, and — for partial/total
// lookup queries that need more results — the responders, the originator
// and the summary peer flood with a limited TTL while the summary peer
// contacts the summary peers it knows, until enough results are gathered or
// the network is covered.
//
// Like the paper's own evaluation, the router runs at the protocol level
// against a match oracle (10% of peers match each query, Table 3); the
// data-level path through real summaries lives in RouteData.
package routing

import (
	"errors"
	"fmt"
	"sort"

	"p2psum/internal/core"
	"p2psum/internal/p2p"
	"p2psum/internal/query"
	"p2psum/internal/saintetiq"
	"p2psum/internal/stats"
)

// Message type names for query traffic.
const (
	MsgQuery         = "query"          // query shipped to an SP or a relevant peer
	MsgQueryResponse = "query-response" // a matching peer answers
	MsgQueryFlood    = "query-flood"    // inter-domain flooding transmissions
	MsgSPLink        = "sp-link"        // SP-to-SP long-range forwarding
)

// Mode selects the recall/precision trade-off of §6.1.2.
type Mode int

// Routing modes.
const (
	// Balanced propagates the query to PQ as derived from the global
	// summary, stale entries included (the paper's default, used for the
	// worst-case Figure 4 accounting).
	Balanced Mode = iota
	// Precise propagates only to V = PQ ∩ Pfresh: no false positives, but
	// stale matching peers are missed (Figure 5's false negatives).
	Precise
	// MaxRecall propagates to V = PQ ∪ Pold: every stale partner is
	// queried too, so no false negatives, at the cost of precision.
	MaxRecall
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Balanced:
		return "balanced"
	case Precise:
		return "precise"
	case MaxRecall:
		return "max-recall"
	default:
		return "?"
	}
}

// Oracle supplies per-peer ground truth and described state for a query.
// At the protocol level the evaluation draws both from the Table 3 match
// model; at the data level they come from the real databases.
type Oracle struct {
	// Current answers "does the peer's database match the query right
	// now" (the query scope QS).
	Current map[p2p.NodeID]bool
	// Described answers "does the peer's merged description match" (what
	// the global summary believes). Nil means identical to Current.
	Described map[p2p.NodeID]bool
}

// CurrentMatch reports ground truth for p.
func (o *Oracle) CurrentMatch(p p2p.NodeID) bool { return o.Current[p] }

// DescribedMatch reports the summary's belief for p.
func (o *Oracle) DescribedMatch(p p2p.NodeID) bool {
	if o.Described == nil {
		return o.Current[p]
	}
	return o.Described[p]
}

// Result is the outcome of routing one query.
type Result struct {
	// Messages is the total number of exchanged messages (the paper's
	// cost unit), broken down in Breakdown.
	Messages int64
	// Breakdown maps message type to count.
	Breakdown map[string]int64
	// Results is the number of answers returned to the originator.
	Results int
	// DomainsVisited counts the domains the query was processed in.
	DomainsVisited int
	// Accuracy accounts returned-vs-relevant peers.
	Accuracy stats.Accuracy
}

func newResult() *Result { return &Result{Breakdown: make(map[string]int64)} }

func (r *Result) add(typ string, n int64) {
	r.Breakdown[typ] += n
	r.Messages += n
}

// SQRouter routes queries through the summary management system.
type SQRouter struct {
	sys *core.System
	// InterDomainTTL bounds the §5.2.2 flooding stage (the paper keeps it
	// deliberately small; 1 reproduces the Figure 7 factors).
	InterDomainTTL int
	// SPLinks is the number of long-range summary-peer links used per
	// flooding stage (the paper assumes ~k links).
	SPLinks int
	// Mode selects the §6.1.2 recall/precision trade-off.
	Mode Mode
}

// NewSQRouter wires a router with the paper's defaults.
func NewSQRouter(sys *core.System) *SQRouter {
	return &SQRouter{sys: sys, InterDomainTTL: 1, SPLinks: 4}
}

// relevantPeers derives PQ for one domain from its cooperation list and the
// oracle, applying the routing mode.
func (r *SQRouter) relevantPeers(sp p2p.NodeID, oracle *Oracle) []p2p.NodeID {
	cl := r.sys.Peer(sp).CooperationList()
	if cl == nil {
		return nil
	}
	var pq []p2p.NodeID
	// The domain is the summary peer plus its clients (§3.1): the SP's own
	// data is part of the global summary and is always fresh.
	if oracle.DescribedMatch(sp) {
		pq = append(pq, sp)
	}
	for _, p := range cl.Partners() {
		v, _ := cl.Get(p)
		switch r.Mode {
		case Precise:
			if v == core.Fresh && oracle.DescribedMatch(p) {
				pq = append(pq, p)
			}
		case MaxRecall:
			if oracle.DescribedMatch(p) || v != core.Fresh {
				pq = append(pq, p)
			}
		default:
			if oracle.DescribedMatch(p) {
				pq = append(pq, p)
			}
		}
	}
	return pq
}

// Route processes a query posed at origin, requiring the given number of
// results (required <= 0 means a total-lookup query). It returns the
// message accounting and accuracy of the answer set.
func (r *SQRouter) Route(origin p2p.NodeID, oracle *Oracle, required int) (*Result, error) {
	net := r.sys.Transport()
	res := newResult()
	firstSP := r.sys.DomainOf(origin)
	if firstSP < 0 {
		return nil, fmt.Errorf("routing: origin %d has no domain", origin)
	}
	if required <= 0 {
		required = 1 << 30 // total lookup: cover the network
	}

	// Ground truth for recall accounting: every online matching peer.
	relevant := make(map[int]bool)
	for _, id := range net.OnlineIDs() {
		if oracle.CurrentMatch(id) {
			relevant[int(id)] = true
		}
	}
	returned := make(map[int]bool)

	visited := make(map[p2p.NodeID]bool)
	pending := []p2p.NodeID{firstSP}
	var lastResponders []p2p.NodeID

	for len(pending) > 0 && res.Results < required {
		sp := pending[0]
		pending = pending[1:]
		if visited[sp] || !net.Online(sp) {
			continue
		}
		visited[sp] = true
		res.DomainsVisited++

		// One message carries the query to the summary peer (from the
		// originator or from the previous stage).
		res.add(MsgQuery, 1)

		// The summary peer matches the query against its global summary.
		pq := r.relevantPeers(sp, oracle)
		// Fan the query out to the relevant peers.
		res.add(MsgQuery, int64(len(pq)))
		var responders []p2p.NodeID
		for _, p := range pq {
			returned[int(p)] = true
			if net.Online(p) && oracle.CurrentMatch(p) {
				responders = append(responders, p)
			}
		}
		// Hits respond to the originator.
		res.add(MsgQueryResponse, int64(len(responders)))
		res.Results += len(responders)
		lastResponders = responders

		if res.Results >= required {
			break
		}

		// Inter-domain stage (§5.2.2): responders, originator and the
		// summary peer flood with a limited TTL; the SP also forwards to
		// the summary peers it knows.
		discovered := r.floodStage(res, sp, origin, lastResponders, visited)
		pending = append(pending, discovered...)
	}

	res.Accuracy.ObserveSets(returned, relevant)
	return res, nil
}

// floodStage performs one §5.2.2 expansion and returns newly discovered
// domains, deterministically ordered. Following the paper: the summary peer
// sends a flooding request to each responder and to the originator; each of
// those peers then sends the query to its neighbors that do not belong to
// its own domain, with a limited TTL, and a branch stops as soon as a new
// domain is reached; the summary peer also forwards to the summary peers it
// knows.
func (r *SQRouter) floodStage(res *Result, sp, origin p2p.NodeID, responders []p2p.NodeID, visited map[p2p.NodeID]bool) []p2p.NodeID {
	net := r.sys.Transport()
	found := make(map[p2p.NodeID]bool)

	flooders := append([]p2p.NodeID{origin}, responders...)
	// Flooding requests from the SP to each flooder.
	res.add(MsgQuery, int64(len(flooders)))
	flooders = append(flooders, sp)

	for _, f := range flooders {
		if !net.Online(f) {
			continue
		}
		home := r.sys.DomainOf(f)
		// Bounded expansion across domain borders.
		type hop struct {
			node p2p.NodeID
			ttl  int
		}
		frontier := []hop{{f, r.InterDomainTTL}}
		seen := map[p2p.NodeID]bool{f: true}
		for len(frontier) > 0 {
			h := frontier[0]
			frontier = frontier[1:]
			if h.ttl == 0 {
				continue
			}
			for _, v := range net.Neighbors(h.node) {
				if seen[v] {
					continue
				}
				d := r.sys.DomainOf(v)
				if h.node == f && d == home {
					continue // first hop targets only out-of-domain neighbors
				}
				seen[v] = true
				res.add(MsgQueryFlood, 1)
				if d >= 0 && d != home && !visited[d] {
					found[d] = true
					continue // new domain reached: the query stops here
				}
				frontier = append(frontier, hop{v, h.ttl - 1})
			}
		}
	}

	// SP long-range links accelerate domain coverage (§5.2.2).
	links := 0
	for _, other := range r.sys.SummaryPeers() {
		if other == sp || visited[other] || !net.Online(other) {
			continue
		}
		res.add(MsgSPLink, 1)
		found[other] = true
		links++
		if links >= r.SPLinks {
			break
		}
	}

	out := make([]p2p.NodeID, 0, len(found))
	for d := range found {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FloodQuery is the pure-flooding baseline: "broadcasting the query in the
// network till a stop condition is satisfied", with each broadcast bounded
// by the given TTL (3 in the paper). When required > 0 and a round returns
// too few results, the ring expands (TTL+1) and the query is re-broadcast —
// every retransmission hits the wire, which is exactly why pure flooding
// gets expensive. required <= 0 performs a single round.
func FloodQuery(net p2p.Transport, origin p2p.NodeID, ttl int, oracle *Oracle, required int) *Result {
	res := newResult()
	relevant := make(map[int]bool)
	for _, id := range net.OnlineIDs() {
		if oracle.CurrentMatch(id) {
			relevant[int(id)] = true
		}
	}
	if required <= 0 {
		required = -1 // single round
	}

	returned := make(map[int]bool)
	online := net.OnlineCount()
	prevReach := -1
	for round := 0; ; round++ {
		before := net.Counter().Get(MsgQueryFlood)
		reached := net.Flood(MsgQueryFlood, origin, ttl+round, nil, nil)
		res.add(MsgQueryFlood, net.Counter().Get(MsgQueryFlood)-before)
		hits := 0
		for id := range reached {
			if oracle.CurrentMatch(id) {
				if !returned[int(id)] {
					returned[int(id)] = true
					// Every matching peer responds each round it is hit;
					// count only the first response per peer as a result.
					res.Results++
				}
				hits++
			}
		}
		res.add(MsgQueryResponse, int64(hits))
		if required < 0 || res.Results >= required {
			break
		}
		if len(reached) >= online || len(reached) <= prevReach {
			// The network is entirely covered, or churn has disconnected
			// the remainder and the ring stopped growing (§5.2.2 stop
			// rule: "the network is entirely covered").
			break
		}
		prevReach = len(reached)
	}
	res.Accuracy.ObserveSets(returned, relevant)
	return res
}

// CentralizedQuery is the centralized-index baseline with a complete,
// consistent index: one message to the index, one to each relevant peer,
// one response each (§6.2.3).
func CentralizedQuery(net p2p.Transport, oracle *Oracle) *Result {
	res := newResult()
	res.add(MsgQuery, 1)
	relevant := make(map[int]bool)
	for _, id := range net.OnlineIDs() {
		if oracle.CurrentMatch(id) {
			relevant[int(id)] = true
		}
	}
	res.add(MsgQuery, int64(len(relevant)))
	res.add(MsgQueryResponse, int64(len(relevant)))
	res.Results = len(relevant)
	res.DomainsVisited = 1
	res.Accuracy.ObserveSets(relevant, relevant)
	return res
}

// DataAnswer is the outcome of a data-level summary query in one domain.
type DataAnswer struct {
	// Peers is PQ: the peers the global summary designates.
	Peers []p2p.NodeID
	// Answer is the approximate answer computed entirely in the summary
	// domain (§5.2.2) — no original record was touched.
	Answer *query.Answer
	// Visited is the number of summary nodes the selection explored.
	Visited int
}

// RouteData evaluates a flexible query against the global-summary store of
// the origin's domain: peer localization plus approximate answering (§5).
// The evaluation fans out across the store's shards under their read locks
// and merges the graded class results, so it is safe to run while the
// domain keeps merging and reconciling concurrently.
func RouteData(sys *core.System, origin p2p.NodeID, q query.Query) (*DataAnswer, error) {
	sp := sys.DomainOf(origin)
	if sp < 0 {
		return nil, fmt.Errorf("routing: origin %d has no domain", origin)
	}
	st := sys.Peer(sp).SummaryStore()
	if st == nil {
		return nil, errors.New("routing: domain has no data-level global summary")
	}
	sa, err := query.AnswerStore(st, q)
	if err != nil {
		return nil, err
	}
	da := &DataAnswer{Answer: sa.Answer, Visited: sa.Visited}
	for _, p := range sa.Peers {
		da.Peers = append(da.Peers, p2p.NodeID(p))
	}
	return da, nil
}

// PeersOf converts saintetiq peer ids to overlay node ids (helper for
// callers crossing the two id spaces).
func PeersOf(ids []saintetiq.PeerID) []p2p.NodeID {
	out := make([]p2p.NodeID, len(ids))
	for i, id := range ids {
		out[i] = p2p.NodeID(id)
	}
	return out
}
