package p2p

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2psum/internal/topology"
)

// Tests for the sharded dispatcher: per-group serialization, the Exec
// barrier, drop rerouting, timer routing and cancellation, and the
// Close drain across groups.

// starTransport builds a ChannelTransport over disjoint star clusters with
// one dispatch group per cluster (the domain-aligned layout core wires).
func starTransport(t testing.TB, clusters, size, dispatchers int, cfg ChannelConfig) *ChannelTransport {
	t.Helper()
	g, _ := topology.DisjointStars(clusters, size, 0.02)
	cfg.Dispatchers = dispatchers
	cfg.GroupBy = func(id NodeID) int { return int(id) / size }
	ct := NewChannelTransport(g, 1, cfg)
	t.Cleanup(ct.Close)
	return ct
}

// TestGroupedDelivery: every message reaches its handler regardless of the
// group layout, and cross-group sends land in the destination's group.
func TestGroupedDelivery(t *testing.T) {
	for _, d := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("dispatchers=%d", d), func(t *testing.T) {
			ct := starTransport(t, 4, 8, d, ChannelConfig{})
			var got [32]atomic.Int32
			for i := 0; i < ct.Len(); i++ {
				id := NodeID(i)
				ct.SetHandler(id, func(msg *Message) { got[id].Add(1) })
			}
			// All-to-one per cluster plus cross-cluster traffic.
			for i := 1; i < ct.Len(); i++ {
				ct.SendNew("ping", NodeID(i), NodeID(i/8*8), 0, nil) // to own hub
				ct.SendNew("far", NodeID(i), NodeID((i+8)%32), 0, nil)
			}
			ct.Settle()
			var sum int32
			for i := 0; i < ct.Len(); i++ {
				sum += got[i].Load()
			}
			if int(sum) != 2*(ct.Len()-1) {
				t.Fatalf("delivered %d messages, want %d", sum, 2*(ct.Len()-1))
			}
			if ct.DispatchGroups() != d {
				t.Fatalf("DispatchGroups = %d, want %d", ct.DispatchGroups(), d)
			}
		})
	}
}

// TestPerNodeSerialization: a node's handler never runs reentrantly even
// under cross-group message storms — the per-group dispatcher is the
// serialization guarantee protocol state relies on.
func TestPerNodeSerialization(t *testing.T) {
	ct := starTransport(t, 4, 8, 4, ChannelConfig{})
	var active [32]atomic.Int32
	var violations atomic.Int32
	for i := 0; i < ct.Len(); i++ {
		id := NodeID(i)
		ct.SetHandler(id, func(msg *Message) {
			if active[id].Add(1) != 1 {
				violations.Add(1)
			}
			time.Sleep(10 * time.Microsecond) // widen the race window
			active[id].Add(-1)
		})
	}
	for round := 0; round < 20; round++ {
		for i := 0; i < ct.Len(); i++ {
			ct.SendNew("a", NodeID((i+1)%32), NodeID(i), 0, nil)
			ct.SendNew("b", NodeID((i+9)%32), NodeID(i), 0, nil)
		}
	}
	ct.Settle()
	if v := violations.Load(); v != 0 {
		t.Fatalf("handler ran reentrantly %d times", v)
	}
}

// TestExecBarrierQuiescesAllGroups: an Exec closure observes no running
// handler in any dispatch group, even while a storm is in flight.
func TestExecBarrierQuiescesAllGroups(t *testing.T) {
	ct := starTransport(t, 4, 8, 4, ChannelConfig{})
	var running atomic.Int32
	for i := 0; i < ct.Len(); i++ {
		ct.SetHandler(NodeID(i), func(msg *Message) {
			running.Add(1)
			time.Sleep(20 * time.Microsecond)
			running.Add(-1)
		})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for round := 0; round < 50; round++ {
			for i := 0; i < ct.Len(); i++ {
				ct.SendNew("x", NodeID(i), NodeID((i+3)%32), 0, nil)
			}
		}
	}()
	for k := 0; k < 25; k++ {
		ct.Exec(func() {
			if r := running.Load(); r != 0 {
				t.Errorf("Exec closure ran with %d handlers active", r)
			}
		})
	}
	<-done
	ct.Settle()
}

// TestExecFromHandlerPanics is the regression test for the documented
// Exec-from-handler deadlock: the transport detects the misuse and panics
// with a diagnosable message instead of hanging the dispatcher forever.
func TestExecFromHandlerPanics(t *testing.T) {
	for _, d := range []int{1, 4} {
		t.Run(fmt.Sprintf("dispatchers=%d", d), func(t *testing.T) {
			ct := starTransport(t, 4, 8, d, ChannelConfig{})
			var recovered atomic.Value
			ct.SetHandler(1, func(msg *Message) {
				defer func() {
					if r := recover(); r != nil {
						recovered.Store(r)
					}
				}()
				ct.Exec(func() {}) // would deadlock; must panic
			})
			ct.SendNew("poke", 0, 1, 0, nil)
			ct.Settle()
			r, _ := recovered.Load().(string)
			if r == "" {
				t.Fatal("Exec from a handler did not panic")
			}
		})
	}
}

// TestSettleFromHandlerPanics: same protection for Settle, which can never
// reach quiescence while the calling handler is itself pending.
func TestSettleFromHandlerPanics(t *testing.T) {
	ct := starTransport(t, 2, 4, 2, ChannelConfig{})
	var recovered atomic.Value
	ct.SetHandler(1, func(msg *Message) {
		defer func() {
			if r := recover(); r != nil {
				recovered.Store(r)
			}
		}()
		ct.Settle()
	})
	ct.SendNew("poke", 0, 1, 0, nil)
	ct.Settle()
	if r, _ := recovered.Load().(string); r == "" {
		t.Fatal("Settle from a handler did not panic")
	}
}

// TestDropReroutedToSenderGroup: a message dropped at an offline receiver
// in another group runs the drop callback serialized with the *sender's*
// group — the callback mutates sender-side protocol state (§4.3 failure
// detection), so that is the serialization that matters.
func TestDropReroutedToSenderGroup(t *testing.T) {
	ct := starTransport(t, 2, 8, 2, ChannelConfig{})
	sender, receiver := NodeID(1), NodeID(9) // cluster 0 and cluster 1
	if a, b := ct.GroupOf(sender), ct.GroupOf(receiver); a == b {
		t.Fatalf("fixture broken: sender and receiver share group %d", a)
	}
	// The sender's group runs slow handlers; the drop callback must never
	// overlap them.
	var senderGroupActive atomic.Int32
	var overlap atomic.Int32
	for i := 0; i < 8; i++ { // cluster 0 nodes
		ct.SetHandler(NodeID(i), func(msg *Message) {
			senderGroupActive.Add(1)
			time.Sleep(20 * time.Microsecond)
			senderGroupActive.Add(-1)
		})
	}
	var dropped atomic.Int32
	ct.SetDrop(func(msg *Message) {
		if senderGroupActive.Load() != 0 {
			overlap.Add(1)
		}
		dropped.Add(1)
	})
	ct.SetOnline(receiver, false)
	for round := 0; round < 30; round++ {
		for i := 0; i < 8; i++ {
			ct.SendNew("busy", NodeID((i+1)%8), NodeID(i), 0, nil)
		}
		ct.SendNew("lost", sender, receiver, 0, nil)
	}
	ct.Settle()
	if got := dropped.Load(); got != 30 {
		t.Fatalf("drop callback ran %d times, want 30", got)
	}
	if o := overlap.Load(); o != 0 {
		t.Fatalf("drop callback overlapped sender-group handlers %d times", o)
	}
}

// TestAfterRunsInOwnersGroup: a timer callback is serialized with the
// owning node's group while other groups keep running — arming a timer in
// group 0 must not observe group-0 handlers mid-flight.
func TestAfterRunsInOwnersGroup(t *testing.T) {
	ct := starTransport(t, 2, 8, 2, ChannelConfig{})
	var group0Active atomic.Int32
	var overlap, fired atomic.Int32
	for i := 0; i < 8; i++ {
		ct.SetHandler(NodeID(i), func(msg *Message) {
			group0Active.Add(1)
			time.Sleep(20 * time.Microsecond)
			group0Active.Add(-1)
		})
	}
	for k := 0; k < 20; k++ {
		ct.After(NodeID(1), float64(k)*0.2, func() {
			if group0Active.Load() != 0 {
				overlap.Add(1)
			}
			fired.Add(1)
		})
	}
	for round := 0; round < 40; round++ {
		for i := 0; i < 8; i++ {
			ct.SendNew("busy", NodeID((i+1)%8), NodeID(i), 0, nil)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for fired.Load() < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/20 timers fired", fired.Load())
		}
		time.Sleep(time.Millisecond)
	}
	ct.Settle()
	if o := overlap.Load(); o != 0 {
		t.Fatalf("timer callbacks overlapped owner-group handlers %d times", o)
	}
}

// TestCloseCancelsTimersAcrossGroups covers After cancellation ordering on
// the sharded dispatcher: timers armed for owners in several groups —
// including a group that never carried a message and is entirely idle —
// are stopped by Close before the inboxes shut, so none fire afterwards
// and none linger in the runtime.
func TestCloseCancelsTimersAcrossGroups(t *testing.T) {
	g, _ := topology.DisjointStars(4, 8, 0.02)
	ct := NewChannelTransport(g, 1, ChannelConfig{
		Dispatchers: 4,
		GroupBy:     func(id NodeID) int { return int(id) / 8 },
	})
	var fired atomic.Int32
	var delivered atomic.Int32
	ct.SetHandler(1, func(msg *Message) { delivered.Add(1) })
	// Traffic only in group 0; groups 1..3 stay idle but arm timers.
	for i := 0; i < 4; i++ {
		ct.After(NodeID(i*8+2), 30, func() { fired.Add(1) }) // ~30ms real
	}
	for k := 0; k < 10; k++ {
		ct.SendNew("x", 0, 1, 0, nil)
	}
	start := time.Now()
	ct.Close()
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("Close took %v with idle groups holding armed timers", el)
	}
	if got := delivered.Load(); got != 10 {
		t.Fatalf("Close drained %d/10 in-flight messages", got)
	}
	time.Sleep(80 * time.Millisecond) // past every timer's deadline
	if f := fired.Load(); f != 0 {
		t.Fatalf("%d timers fired after Close", f)
	}
	ct.Close() // idempotent
}

// TestSetGroupByFrozenAfterTraffic: the mapping is only mutable while the
// transport is pristine; once a message has been sent the old mapping
// stays (any mapping is valid — this protects in-flight serialization).
func TestSetGroupByFrozenAfterTraffic(t *testing.T) {
	ct := starTransport(t, 2, 4, 2, ChannelConfig{})
	if !ct.SetGroupBy(func(id NodeID) int { return 0 }) {
		t.Fatal("pristine transport rejected SetGroupBy")
	}
	if g := ct.GroupOf(5); g != 0 {
		t.Fatalf("GroupOf(5) = %d after remap to group 0", g)
	}
	ct.SetHandler(1, func(msg *Message) {})
	ct.SendNew("x", 0, 1, 0, nil)
	ct.Settle()
	if ct.SetGroupBy(func(id NodeID) int { return 1 }) {
		t.Fatal("SetGroupBy applied after traffic had flowed")
	}
	if g := ct.GroupOf(5); g != 0 {
		t.Fatalf("mapping changed after rejected SetGroupBy: GroupOf(5) = %d", g)
	}
}

// TestGroupedSettleWaitsForRelays: relayed sends that hop between groups
// are all drained before Settle returns.
func TestGroupedSettleWaitsForRelays(t *testing.T) {
	ct := starTransport(t, 4, 4, 4, ChannelConfig{})
	var mu sync.Mutex
	reached := 0
	// 0 -> 5 -> 10 -> 15 across four groups.
	ct.SetHandler(5, func(msg *Message) { ct.SendNew("relay", 5, 10, 0, nil) })
	ct.SetHandler(10, func(msg *Message) { ct.SendNew("relay", 10, 15, 0, nil) })
	ct.SetHandler(15, func(msg *Message) { mu.Lock(); reached++; mu.Unlock() })
	ct.SendNew("start", 0, 5, 0, nil)
	ct.Settle()
	mu.Lock()
	defer mu.Unlock()
	if reached != 1 {
		t.Fatalf("cross-group relay chain incomplete before Settle returned (reached=%d)", reached)
	}
}
