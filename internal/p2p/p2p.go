// Package p2p is the unstructured overlay substrate: message transport
// behind the Transport interface, with online/offline state, TTL-bounded
// flooding and the selective walk of Adamic et al. [23] that the paper's
// find protocol uses (§4.1).
//
// The package deliberately knows nothing about summaries: protocol logic
// lives in internal/core (summary management) and internal/routing (query
// routing); p2p only moves messages and counts them. Protocol layers
// depend on the Transport interface; the two concrete transports are
// Network (deterministic, discrete-event) and ChannelTransport
// (concurrent, real-time).
package p2p

import (
	"fmt"
	"math/rand"

	"p2psum/internal/liveness"
	"p2psum/internal/sim"
	"p2psum/internal/stats"
	"p2psum/internal/topology"
)

// NodeID identifies an overlay node (index into the topology graph).
type NodeID int

// Message is one overlay message. Payloads are protocol-defined.
type Message struct {
	ID      uint64
	Type    string
	From    NodeID
	To      NodeID
	TTL     int
	Hops    int
	Payload any
}

// Handler consumes messages delivered to a node.
type Handler func(msg *Message)

// Sizer is implemented by payloads that know their wire size; the network
// charges them to the byte counters (the paper's §6.1.1 storage model sets
// the unit: ~512 bytes per summary node).
type Sizer interface {
	WireSize() int
}

// BaseMessageBytes is the accounted size of a payload-less protocol
// message (headers, ids, freshness values).
const BaseMessageBytes = 64

// Network couples a topology with the event engine and tracks the message
// traffic per type — the unit of every cost figure in the paper ("the cost
// of query routing, which is measured in term of the number of exchanged
// messages"). It is the deterministic, sim-backed Transport.
type Network struct {
	engine  *sim.Engine
	graph   *topology.Graph
	rng     *rand.Rand
	view    *liveness.View
	handler []Handler
	counter *stats.Counter
	bytes   *stats.Counter
	nextMsg uint64
	// DirectLatency is used for node pairs without an overlay edge (e.g. a
	// query sent straight to a relevant peer found in a summary).
	DirectLatency float64
	// drop is invoked (if set via SetDrop) whenever a message addressed
	// to an offline node is discarded; protocols use it to detect
	// failures (§4.3: "a partner who has tried to send push or query
	// messages to SP will detect its departure").
	drop func(msg *Message)
	// shard/books switch the network into parallel mode (see region.go):
	// events run on a region-sharded kernel instead of engine, and
	// traffic is charged to per-region books merged on read. Exactly one
	// of engine and shard is non-nil.
	shard *sim.Sharded
	books []regionBook
	// gate holds the partition hook (SetLinkFilter); severed links route
	// deliveries to the drop callback and vanish from Neighbors. In
	// sharded mode a cut is deterministic only when it is domain-aligned
	// like every other cross-region interaction (see region.go).
	gate linkGate
}

// NewNetwork builds a network over the graph. All nodes start online.
func NewNetwork(engine *sim.Engine, graph *topology.Graph, seed int64) *Network {
	n := &Network{
		engine:        engine,
		graph:         graph,
		rng:           rand.New(rand.NewSource(seed)),
		view:          liveness.NewView(graph.Len(), nil),
		handler:       make([]Handler, graph.Len()),
		counter:       stats.NewCounter(),
		bytes:         stats.NewCounter(),
		DirectLatency: 0.100,
	}
	return n
}

// Engine returns the underlying event engine (nil in sharded mode; use
// Sharded then).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Graph returns the overlay topology.
func (n *Network) Graph() *topology.Graph { return n.graph }

// Len returns the number of nodes.
func (n *Network) Len() int { return n.graph.Len() }

// Counter exposes the per-type message counters. In sharded mode the
// per-region books are merged into a fresh snapshot on every call.
func (n *Network) Counter() *stats.Counter {
	if n.books == nil {
		return n.counter
	}
	return mergedBooks(n.books, func(b *regionBook) *stats.Counter { return b.counter })
}

// Bytes exposes the per-type traffic volume counters (merged on read in
// sharded mode, like Counter). Payloads implementing Sizer are charged
// their wire size; everything else costs BaseMessageBytes.
func (n *Network) Bytes() *stats.Counter {
	if n.books == nil {
		return n.bytes
	}
	return mergedBooks(n.books, func(b *regionBook) *stats.Counter { return b.bytes })
}

// Rand returns the network's deterministic random source.
func (n *Network) Rand() *rand.Rand { return n.rng }

// SetHandler installs the message handler of a node.
func (n *Network) SetHandler(id NodeID, h Handler) { n.handler[id] = h }

// SetDrop installs the drop callback (§4.3 failure detection).
func (n *Network) SetDrop(fn func(*Message)) { n.drop = fn }

// SetLinkFilter installs the partition hook (see Transport.SetLinkFilter).
func (n *Network) SetLinkFilter(fn LinkFilter) { n.gate.set(fn) }

// Liveness returns the network's membership view — the ground truth of the
// whole overlay on this in-memory transport.
func (n *Network) Liveness() *liveness.View { return n.view }

// Online reports whether the node is currently connected.
func (n *Network) Online(id NodeID) bool { return n.view.Online(int(id)) }

// SetOnline flips a node's connectivity in the liveness view.
func (n *Network) SetOnline(id NodeID, up bool) {
	if up {
		n.view.MarkAlive(int(id))
	} else {
		n.view.MarkDead(int(id))
	}
}

// OnlineCount returns the number of connected nodes.
func (n *Network) OnlineCount() int { return n.view.OnlineCount() }

// Neighbors returns the online neighbors of a node, in ascending id order
// (the graph's adjacency order is already deterministic).
func (n *Network) Neighbors(id NodeID) []NodeID {
	var out []NodeID
	for _, v := range n.graph.Neighbors(int(id)) {
		if n.view.Online(v) && !n.gate.severed(id, NodeID(v)) {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Degree returns the node's static overlay degree.
func (n *Network) Degree(id NodeID) int { return n.graph.Degree(int(id)) }

// HopsWithin returns BFS hop distances from src, bounded by radius.
func (n *Network) HopsWithin(src NodeID, radius int) map[NodeID]int {
	dist := n.graph.BFSWithin(int(src), radius)
	out := make(map[NodeID]int, len(dist))
	for v, d := range dist {
		out[NodeID(v)] = d
	}
	return out
}

// Exec runs fn immediately: the event kernel only executes between
// Settle windows on the driver goroutine, so driver code is always
// serialized with handlers (in sharded mode the region workers are
// quiescent whenever the driver runs).
func (n *Network) Exec(fn func()) { fn() }

// After schedules fn delaySeconds of virtual time from now. In
// sequential mode the engine is single-threaded, so fn is serialized
// with handlers regardless of which node owns the timer; in sharded
// mode the timer runs in the owner's region, at that region's clock.
func (n *Network) After(owner NodeID, delaySeconds float64, fn func()) {
	if n.shard != nil {
		r := n.shard.RegionOf(int(owner))
		at := n.shard.RegionNow(r) + sim.Seconds(delaySeconds)
		n.shard.Schedule(int(owner), int(owner), at, fn)
		return
	}
	n.engine.After(sim.Seconds(delaySeconds), fn)
}

// AfterFrom schedules fn in owner's region from code executing in
// origin's region (OriginScheduler). In sharded mode a cross-region
// timer is staged at the next window barrier like a cross-region
// message, stamped with the origin region's clock; same-region (and
// sequential mode) matches After.
func (n *Network) AfterFrom(origin, owner NodeID, delaySeconds float64, fn func()) {
	if n.shard != nil {
		at := n.shard.RegionNow(n.shard.RegionOf(int(origin))) + sim.Seconds(delaySeconds)
		n.shard.Schedule(int(origin), int(owner), at, fn)
		return
	}
	n.engine.After(sim.Seconds(delaySeconds), fn)
}

// Settle runs the event kernel to quiescence, delivering every in-flight
// message and everything sent while handling it.
func (n *Network) Settle() {
	if n.shard != nil {
		n.shard.Run()
		return
	}
	n.engine.Run()
}

// Now returns the current virtual time (the global frontier in sharded
// mode).
func (n *Network) Now() sim.Time {
	if n.shard != nil {
		return n.shard.Now()
	}
	return n.engine.Now()
}

// latencyBetween picks the edge latency when adjacent, DirectLatency
// otherwise.
func (n *Network) latencyBetween(a, b NodeID) float64 {
	if l, ok := n.graph.LatencyOK(int(a), int(b)); ok {
		return l
	}
	return n.DirectLatency
}

// charge accounts n payload-less transmissions (walks and floods).
func (n *Network) charge(typ string, k int64) {
	n.counter.Add(typ, k)
	n.bytes.Add(typ, k*BaseMessageBytes)
}

// Send schedules delivery of msg from msg.From to msg.To, counting it under
// msg.Type. Messages to offline or handler-less nodes are counted as sent
// (the bytes hit the wire) but trigger Drop instead of a handler. Messages
// whose payload is serializable (nil, or with a registered wire codec) are
// charged their real encoded frame length; the Sizer estimate remains the
// fallback, so discrete-event and TCP runs report comparable byte counts.
func (n *Network) Send(msg *Message) {
	if msg.To < 0 || int(msg.To) >= n.graph.Len() {
		panic(fmt.Sprintf("p2p: send to out-of-range node %d", msg.To))
	}
	if n.shard != nil {
		n.sendSharded(msg)
		return
	}
	n.nextMsg++
	if msg.ID == 0 {
		msg.ID = n.nextMsg
	}
	n.counter.Inc(msg.Type)
	n.bytes.Add(msg.Type, messageWireSize(msg))
	lat := n.latencyBetween(msg.From, msg.To)
	n.engine.After(sim.Seconds(lat), func() { n.deliver(msg) })
}

// deliver hands msg to its destination handler, or to the drop callback
// when the node is offline or handler-less — or when the link filter
// severs the link at delivery time (a message in flight when a partition
// lands is lost to it, like a packet on a cut cable).
func (n *Network) deliver(msg *Message) {
	if n.gate.severed(msg.From, msg.To) ||
		!n.view.Online(int(msg.To)) || n.handler[msg.To] == nil {
		if n.drop != nil {
			n.drop(msg)
		}
		return
	}
	n.handler[msg.To](msg)
}

// SendNew builds and sends a message.
func (n *Network) SendNew(typ string, from, to NodeID, ttl int, payload any) {
	n.Send(&Message{Type: typ, From: from, To: to, TTL: ttl, Payload: payload})
}

// Flood delivers a message of the given type from src to every node within
// ttl hops using Gnutella-style constrained broadcast. It returns the nodes
// reached and counts every transmission (§6.2.3).
func (n *Network) Flood(typ string, src NodeID, ttl int, payload any, visit func(NodeID)) map[NodeID]bool {
	return runFlood(n.linkFor(src), typ, src, ttl, visit)
}

// WalkResult is the outcome of a walk.
type WalkResult struct {
	// Found is the node that satisfied the predicate, or -1.
	Found NodeID
	// Path is the sequence of visited nodes, starting at the origin.
	Path []NodeID
	// Messages is the number of transmissions the walk used.
	Messages int
}

// SelectiveWalk performs the paper's find protocol walk (§4.1, after [23]):
// starting at src, repeatedly move to the highest-degree unvisited online
// neighbor until accept returns true or maxHops is exhausted. Ties break on
// the lower node id; dead ends backtrack.
func (n *Network) SelectiveWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(n.linkFor(src), typ, src, maxHops, accept, selectiveChoice(n.Degree))
}

// RandomWalk is the blind baseline: uniform random unvisited neighbor.
// The choice draws from the network-wide rng, so in sharded mode it is
// driver-context only (walks from concurrent region workers would race
// on the source).
func (n *Network) RandomWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(n.linkFor(src), typ, src, maxHops, accept, func(cands []NodeID) NodeID {
		return cands[n.rng.Intn(len(cands))]
	})
}

// OnlineIDs returns the sorted ids of online nodes.
func (n *Network) OnlineIDs() []NodeID { return onlineNodeIDs(n.view) }

// onlineNodeIDs converts the view's ascending online ids to NodeIDs.
func onlineNodeIDs(v *liveness.View) []NodeID {
	ids := v.OnlineIDs()
	out := make([]NodeID, len(ids))
	for i, id := range ids {
		out[i] = NodeID(id)
	}
	return out
}
