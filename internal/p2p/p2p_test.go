package p2p

import (
	"math/rand"
	"testing"
	"testing/quick"

	"p2psum/internal/sim"
	"p2psum/internal/topology"
)

// lineGraph builds 0-1-2-...-n-1 with unit latencies.
func lineGraph(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(i, i+1, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func baNetwork(t *testing.T, n int, seed int64) (*Network, *sim.Engine) {
	t.Helper()
	g, err := topology.BarabasiAlbert(n, 2, nil, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	e := sim.New()
	return NewNetwork(e, g, seed), e
}

func TestSendAndHandle(t *testing.T) {
	e := sim.New()
	net := NewNetwork(e, lineGraph(t, 3), 1)
	var got []string
	net.SetHandler(1, func(m *Message) { got = append(got, m.Type) })
	net.SendNew("hello", 0, 1, 0, nil)
	e.Run()
	if len(got) != 1 || got[0] != "hello" {
		t.Errorf("delivered = %v", got)
	}
	if net.Counter().Get("hello") != 1 {
		t.Errorf("counter = %d", net.Counter().Get("hello"))
	}
}

func TestSendLatency(t *testing.T) {
	e := sim.New()
	net := NewNetwork(e, lineGraph(t, 3), 1)
	var at sim.Time
	net.SetHandler(1, func(m *Message) { at = e.Now() })
	net.SendNew("x", 0, 1, 0, nil) // edge latency 0.01
	e.Run()
	if at != sim.Seconds(0.01) {
		t.Errorf("edge delivery at %v, want 0.01", at)
	}
	// Non-adjacent: DirectLatency.
	var at2 sim.Time
	net.SetHandler(2, func(m *Message) { at2 = e.Now() })
	start := e.Now()
	net.SendNew("x", 0, 2, 0, nil)
	e.Run()
	if at2-start != sim.Seconds(net.DirectLatency) {
		t.Errorf("direct delivery took %v, want %v", at2-start, net.DirectLatency)
	}
}

func TestSendToOffline(t *testing.T) {
	e := sim.New()
	net := NewNetwork(e, lineGraph(t, 2), 1)
	dropped := 0
	net.SetDrop(func(m *Message) { dropped++ })
	net.SetHandler(1, func(m *Message) { t.Error("offline node handled message") })
	net.SetOnline(1, false)
	net.SendNew("x", 0, 1, 0, nil)
	e.Run()
	if dropped != 1 {
		t.Errorf("dropped = %d", dropped)
	}
	// Message is still counted: it was transmitted.
	if net.Counter().Get("x") != 1 {
		t.Error("offline message not counted")
	}
	if net.OnlineCount() != 1 {
		t.Errorf("OnlineCount = %d", net.OnlineCount())
	}
	ids := net.OnlineIDs()
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("OnlineIDs = %v", ids)
	}
}

func TestSendPanicsOutOfRange(t *testing.T) {
	e := sim.New()
	net := NewNetwork(e, lineGraph(t, 2), 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range send did not panic")
		}
	}()
	net.SendNew("x", 0, 99, 0, nil)
}

func TestFloodLine(t *testing.T) {
	e := sim.New()
	net := NewNetwork(e, lineGraph(t, 6), 1)
	var visited []NodeID
	reached := net.Flood("q", 0, 3, nil, func(id NodeID) { visited = append(visited, id) })
	// TTL 3 on a line reaches nodes 0..3.
	if len(reached) != 4 {
		t.Errorf("reached %v", reached)
	}
	// Transmissions: 0->1, 1->2, 2->3 = 3 (no branching on a line).
	if got := net.Counter().Get("q"); got != 3 {
		t.Errorf("flood messages = %d, want 3", got)
	}
	if len(visited) != 4 {
		t.Errorf("visit callback saw %v", visited)
	}
}

func TestFloodCountsDuplicates(t *testing.T) {
	// Triangle: flooding from 0 with TTL 2 transmits on every edge
	// direction except back to the sender; duplicates are counted.
	g := topology.NewGraph(3)
	g.AddEdge(0, 1, 0.01)
	g.AddEdge(1, 2, 0.01)
	g.AddEdge(0, 2, 0.01)
	net := NewNetwork(sim.New(), g, 1)
	reached := net.Flood("q", 0, 2, nil, nil)
	if len(reached) != 3 {
		t.Errorf("reached = %v", reached)
	}
	// 0->1, 0->2 then 1->2 (dup), 2->1 (dup) = 4 transmissions.
	if got := net.Counter().Get("q"); got != 4 {
		t.Errorf("messages = %d, want 4 (duplicates hit the wire)", got)
	}
}

func TestFloodSkipsOffline(t *testing.T) {
	e := sim.New()
	net := NewNetwork(e, lineGraph(t, 5), 1)
	net.SetOnline(2, false)
	reached := net.Flood("q", 0, 4, nil, nil)
	if reached[NodeID(3)] || reached[NodeID(4)] {
		t.Error("flood passed through an offline node")
	}
	if !reached[NodeID(1)] {
		t.Error("flood failed to reach node 1")
	}
}

func TestSelectiveWalkFindsHub(t *testing.T) {
	net, _ := baNetwork(t, 300, 7)
	// The selective walk climbs the degree gradient, so it should find a
	// high-degree node quickly.
	res := net.SelectiveWalk("find", 250, 20, func(id NodeID) bool {
		return net.Graph().Degree(int(id)) >= 10
	})
	if res.Found < 0 {
		t.Fatalf("selective walk failed: path %v", res.Path)
	}
	if res.Messages > 10 {
		t.Errorf("selective walk used %d hops; expected fast hub discovery", res.Messages)
	}
	if net.Counter().Get("find") != int64(res.Messages) {
		t.Error("walk messages not counted")
	}
}

func TestWalkAcceptAtOrigin(t *testing.T) {
	net, _ := baNetwork(t, 50, 8)
	res := net.SelectiveWalk("find", 3, 10, func(id NodeID) bool { return id == 3 })
	if res.Found != 3 || res.Messages != 0 || len(res.Path) != 1 {
		t.Errorf("origin-accepting walk = %+v", res)
	}
}

func TestWalkExhaustsBudget(t *testing.T) {
	net, _ := baNetwork(t, 50, 9)
	res := net.SelectiveWalk("find", 0, 5, func(id NodeID) bool { return false })
	if res.Found != -1 {
		t.Error("impossible predicate found a node")
	}
	if res.Messages > 5 {
		t.Errorf("walk overshot budget: %d", res.Messages)
	}
}

func TestWalkBacktracksDeadEnd(t *testing.T) {
	// Star with a pendant: 0 is the hub; walk from a leaf must backtrack
	// through the hub to find the other leaf.
	g := topology.NewGraph(4)
	g.AddEdge(0, 1, 0.01)
	g.AddEdge(0, 2, 0.01)
	g.AddEdge(0, 3, 0.01)
	net := NewNetwork(sim.New(), g, 1)
	res := net.SelectiveWalk("find", 1, 10, func(id NodeID) bool { return id == 3 })
	if res.Found != 3 {
		t.Errorf("walk with backtracking failed: %+v", res)
	}
}

func TestRandomWalk(t *testing.T) {
	net, _ := baNetwork(t, 200, 10)
	res := net.RandomWalk("find", 0, 200, func(id NodeID) bool { return id == 150 })
	// May or may not find it, but must respect the budget and count
	// messages consistently.
	if res.Messages > 200 {
		t.Errorf("random walk overshot budget: %d", res.Messages)
	}
	if res.Found >= 0 && res.Found != 150 {
		t.Errorf("random walk found the wrong node: %d", res.Found)
	}
}

func TestNeighborsFiltersOffline(t *testing.T) {
	e := sim.New()
	net := NewNetwork(e, lineGraph(t, 3), 1)
	net.SetOnline(2, false)
	nb := net.Neighbors(1)
	if len(nb) != 1 || nb[0] != 0 {
		t.Errorf("Neighbors = %v", nb)
	}
}

// Property: flooding with TTL t reaches exactly the online BFS ball of
// radius t (when all nodes are online).
func TestQuickFloodMatchesBFS(t *testing.T) {
	f := func(seed int64, ttlRaw uint8) bool {
		ttl := int(ttlRaw % 4)
		g, err := topology.BarabasiAlbert(80, 2, nil, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		net := NewNetwork(sim.New(), g, seed)
		reached := net.Flood("q", 0, ttl, nil, nil)
		want := g.BFSWithin(0, ttl)
		if len(reached) != len(want) {
			return false
		}
		for id := range want {
			if !reached[NodeID(id)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: selective walks never revisit a node.
func TestQuickWalkNoRevisit(t *testing.T) {
	f := func(seed int64) bool {
		g, err := topology.BarabasiAlbert(60, 2, nil, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		net := NewNetwork(sim.New(), g, seed)
		res := net.SelectiveWalk("w", 5, 30, func(NodeID) bool { return false })
		seen := make(map[NodeID]bool)
		for _, id := range res.Path {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

type sizedPayload struct{ n int }

func (s sizedPayload) WireSize() int { return s.n }

func TestByteAccounting(t *testing.T) {
	e := sim.New()
	net := NewNetwork(e, lineGraph(t, 3), 1)
	net.SetHandler(1, func(*Message) {})
	net.SendNew("plain", 0, 1, 0, nil)
	net.SendNew("sized", 0, 1, 0, sizedPayload{n: 1000})
	e.Run()
	// A payload-less message is serializable without a codec: it is
	// charged its real encoded frame length.
	frame, ok := encodeFrame(&Message{Type: "plain", From: 0, To: 1})
	if !ok {
		t.Fatal("nil-payload message not frameable")
	}
	if got := net.Bytes().Get("plain"); got != int64(len(frame)) {
		t.Errorf("plain bytes = %d, want frame length %d", got, len(frame))
	}
	// A payload without a registered codec falls back to the Sizer
	// estimate on top of the base message cost.
	if got := net.Bytes().Get("sized"); got != BaseMessageBytes+1000 {
		t.Errorf("sized bytes = %d, want %d", got, BaseMessageBytes+1000)
	}
	if want := int64(len(frame)) + BaseMessageBytes + 1000; net.Bytes().Total() != want {
		t.Errorf("total bytes = %d, want %d", net.Bytes().Total(), want)
	}
}
