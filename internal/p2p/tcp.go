package p2p

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"p2psum/internal/liveness"
	"p2psum/internal/stats"
	"p2psum/internal/topology"
	"p2psum/internal/wire"
)

// TCPTransport is the socket-backed Transport: a process hosts a subset of
// the overlay's nodes, serializes every protocol message into a wire frame
// (internal/wire) and ships frames to the processes hosting the remaining
// nodes over persistent TCP connections, so two real OS processes can form
// a summary domain, reconcile it and answer queries — the deployment
// direction ROADMAP names beyond the in-memory transports.
//
// Topology is shared knowledge: every process constructs the same
// topology.Graph (same generator, same seed) and agrees on which process
// hosts which node (TCPConfig.Hosts). Handler dispatch reuses the dispatch
// engine of the in-memory channel transport — per-group serialized
// dispatcher goroutines, Exec barriers, After timers, sharded bookkeeping —
// so the protocol layers see the exact same execution model; only delivery
// differs: a frame bound for a remote node rides a per-peer writer
// goroutine onto the socket instead of a latency-sleeping carrier.
//
// Stream protocol: every unit on a connection is a 4-byte big-endian
// length followed by a 1-byte kind and the body. Data units carry one wire
// frame; control units implement the hello handshake (listen address plus
// hosted node ids), drop echoes (§4.3 failure detection across processes:
// a frame for an offline node bounces back and runs the sender's drop
// callback in the sender's process), the status exchange behind the
// distributed Settle, and named barriers for driver-side phase alignment.
//
// Byte accounting is exact: every serializable message — local or remote —
// is charged the length of its encoded frame, so Bytes() equals the sum of
// encoded frame lengths and in-process runs report the same volumes as
// distributed ones. WireStats additionally reports the socket-level frame
// traffic.
//
// Limitations (documented, driver-visible): Online state is a local view —
// remote nodes count as online unless flipped locally; Flood, SelectiveWalk
// and RandomWalk traverse the shared topology in the calling process
// (charging transmissions as the in-memory transports do) and their accept
// callbacks only see local protocol state. Drivers on a TCP deployment
// should therefore partition driver duties by locality (see Localizer),
// which internal/core's construction already does.
type TCPTransport struct {
	graph *topology.Graph
	cfg   TCPConfig
	eng   *dispatchEngine
	ln    net.Listener
	laddr string

	view *liveness.View

	mu      sync.Mutex // guards handler, drop
	handler []Handler
	drop    func(*Message)

	local  []bool   // id -> hosted in this process
	hostOf []string // id -> remote process address ("" when local)

	connMu       sync.Mutex
	conns        map[string]*tcpConn // peer listen address -> registered connection
	allConns     []*tcpConn          // every started connection, for Close
	reconnecting map[string]bool     // peer addresses with a live backoff loop
	closed       bool
	closeCh      chan struct{} // closed by Close; aborts reconnect backoffs

	wireMu      sync.Mutex
	sentTo      map[string]int64 // data frames enqueued per peer address
	handledFrom map[string]int64 // data frames fully handled per peer address
	peerHandled map[string]int64 // peer's last-reported handled count (status exchanges)
	ws          WireStats

	statusMu sync.Mutex
	nonce    uint64
	statusCh map[uint64]chan statusInfo

	barrierMu sync.Mutex
	barriers  map[uint32]map[string]bool // tag -> peer addresses seen

	nextMsg atomic.Uint64
	wg      sync.WaitGroup

	// gate holds the partition hook (SetLinkFilter): frames for severed
	// links never reach the socket — they are charged as sent and routed
	// to the §4.3 drop path in the sender's process, exactly like a frame
	// for a dead connection.
	gate linkGate
}

// TCPConfig configures a TCPTransport.
type TCPConfig struct {
	// Listen is the TCP listen address, e.g. "127.0.0.1:7701". Use port 0
	// to let the kernel pick (ListenAddr reports the result).
	Listen string
	// Local lists the overlay nodes hosted in this process.
	Local []NodeID
	// Hosts maps every remote node to the listen address of the process
	// hosting it. It may also be installed later via SetHosts (before any
	// traffic), which test setups with kernel-picked ports need.
	Hosts map[NodeID]string
	// Dispatchers is the number of dispatch groups (see ChannelConfig).
	Dispatchers int
	// GroupBy maps a node to its dispatch group (see ChannelConfig).
	GroupBy func(NodeID) int
	// TimerScale maps one virtual second of After delay onto real time
	// (default 1ms, matching the channel transport's fallback).
	TimerScale time.Duration
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
	// MaxFrame bounds the accepted unit size in bytes (default 64 MiB).
	MaxFrame int
	// ReconnectAttempts bounds the background redial loop started when a
	// registered peer connection breaks: the transport retries with
	// exponential backoff until the peer answers or the budget is spent
	// (default 8; negative disables reconnection — sends keep failing into
	// the §4.3 drop path until a send-triggered dial succeeds). A
	// successful redial re-runs the hello handshake, and the protocol
	// layer's liveness gossip reconciles the peer's nodes back to online.
	ReconnectAttempts int
	// ReconnectBackoff is the first redial delay (default 100ms).
	ReconnectBackoff time.Duration
	// ReconnectMax caps the growing redial delay (default 3s).
	ReconnectMax time.Duration
	// FlushDelay bounds the writer's coalescing wait: once a batch holds at
	// least one unit, the writer lingers this long for more before issuing
	// the socket write (default 500µs; negative flushes immediately —
	// batches then only form while a previous write is in flight).
	FlushDelay time.Duration
	// FlushBytes is the batch size that flushes without waiting out
	// FlushDelay (default 32 KiB).
	FlushBytes int
	// KeepAlive is the idle-link probe interval: a connection that has
	// received nothing for this long is pinged, and torn down when the pong
	// stays out for another 2×KeepAlive — the cheap liveness signal for
	// idle links, where no data frame would ever bounce (default 15s;
	// negative disables probing).
	KeepAlive time.Duration
	// MaxBacklogBytes bounds the unflushed send backlog of one peer
	// connection: when the batch a stalled writer is accumulating exceeds
	// this many bytes, the connection is cut and its queued units
	// discarded — senders fall into the §4.3 drop path instead of queueing
	// without bound behind a peer that stopped reading (default 0:
	// unbounded).
	MaxBacklogBytes int
	// MaxBacklogAge cuts a connection whose oldest unflushed unit has
	// waited this long for the socket (checked on the keepalive tick) —
	// the time-domain complement of MaxBacklogBytes for slow-but-not-
	// stopped peers (default 0: no age bound).
	MaxBacklogAge time.Duration
}

// Stream unit kinds.
const (
	kHello      = 1 // handshake: listen address + hosted node ids
	kData       = 2 // one wire frame (a protocol message)
	kDropEcho   = 3 // a frame bounced back to its sender's process (§4.3)
	kStatusReq  = 4 // distributed-settle probe
	kStatusResp = 5 // distributed-settle answer
	kBarrier    = 6 // named driver barrier marker
	kPing       = 7 // keepalive probe (body: sender's send-time nanos)
	kPong       = 8 // keepalive answer (body echoed back)
)

// statusInfo is one peer's answer to a settle probe.
type statusInfo struct {
	handled int64 // data frames from us the peer has fully handled
	sent    int64 // data frames the peer has enqueued to us
	idle    bool  // peer's dispatch groups were pending-free at reply time
}

// WireStats counts the socket-level data-frame traffic of a TCPTransport.
// Control units (hello, status, barriers, drop echoes) are excluded: they
// are transport overhead, not protocol cost.
type WireStats struct {
	// SentFrames and SentBytes count data frames enqueued to remote peers
	// (bytes are encoded frame lengths, without the length prefix).
	SentFrames, SentBytes int64
	// RecvFrames and RecvBytes count data frames received from peers.
	RecvFrames, RecvBytes int64
	// LocalFrames and LocalBytes count frames delivered within the
	// process (both endpoints hosted here) — they never touch a socket but
	// pass through the same encode/decode pipeline.
	LocalFrames, LocalBytes int64
	// ChargedMsgs and ChargedBytes count transmissions accounted without
	// a frame: walk/flood traversal charges and Sizer-fallback payloads
	// (no registered codec). The byte-accounting identity is therefore
	// Bytes().Total() == SentBytes + LocalBytes + ChargedBytes.
	ChargedMsgs, ChargedBytes int64
}

// tcpConn is one persistent peer connection: senders append complete units
// directly into a pooled batch buffer, a writer goroutine swaps the batch
// out and flushes it with one socket write (the throttled send-routine
// idiom — coalescing amortizes syscalls and small-packet overhead), a
// reader goroutine parses inbound units out of a reused read buffer. The
// batch never blocks senders on purpose: a dispatcher must never block on
// a peer's socket backpressure, or two processes flooding each other could
// deadlock in a cycle (dispatcher -> full send queue -> peer's reader ->
// peer's full inbox -> peer's dispatcher -> ...). Backpressure is applied
// by disconnection instead: the TCPConfig.MaxBacklogBytes/MaxBacklogAge
// budgets cut a connection whose backlog grows past bounds, so a stalled
// peer is dropped (§4.3 failure path), not waited on. Appending never
// blocks and never holds a lock across I/O.
type tcpConn struct {
	c    net.Conn
	dead atomic.Bool

	qmu     sync.Mutex
	qcond   *sync.Cond
	batch   *wire.Enc // pending units; nil while empty (writer owns no batch)
	pending int       // units in batch

	// Flow accounting (PeerStats): EWMA rates plus lifetime unit counts on
	// both directions, flush counts on the send side, ping RTT.
	sendFlow  flowRate
	recvFlow  flowRate
	sentUnits atomic.Int64
	recvUnits atomic.Int64
	flushes   atomic.Int64
	lastRecv  atomic.Int64 // unix nanos of the last received unit
	pingSent  atomic.Int64 // unix nanos of the outstanding ping (0: none)
	lastRTT   atomic.Int64 // nanos of the last completed ping round trip
	oldest    atomic.Int64 // unix nanos of the oldest unflushed unit (0: none)

	mu   sync.Mutex
	addr string // peer's listen address, learned from hello (dialed: preset)
}

func newTCPConn(c net.Conn) *tcpConn {
	conn := &tcpConn{c: c}
	conn.qcond = sync.NewCond(&conn.qmu)
	conn.lastRecv.Store(time.Now().UnixNano())
	return conn
}

func (c *tcpConn) peerAddr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addr
}

// appendUnit appends one stream unit — length prefix, kind, body — to the
// batch buffer, building the body in place via fill (which must append
// through e and report success). The length prefix is reserved up front
// and backfilled, so even a body whose size is unknown beforehand (a frame
// encoded straight off its payload codec) costs no intermediate buffer. A
// failed fill rolls the batch back to its previous state. appendUnit
// reports false — nothing appended — once the connection is dead. It never
// blocks on the socket: only the writer does I/O.
func (c *tcpConn) appendUnit(kind byte, fill func(e *wire.Enc) bool) bool {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if c.dead.Load() {
		return false
	}
	if c.batch == nil {
		c.batch = wire.GetEnc()
	}
	e := c.batch
	start := e.Len()
	off := e.Skip(4)
	e.Uint8(kind)
	if fill != nil && !fill(e) {
		e.Truncate(start)
		return false
	}
	e.FillUint32(off, uint32(e.Len()-start-4))
	c.pending++
	if c.pending == 1 {
		c.oldest.Store(time.Now().UnixNano())
	}
	c.qcond.Signal()
	return true
}

// sendRaw appends one unit with a prebuilt body (control traffic).
func (c *tcpConn) sendRaw(kind byte, body []byte) bool {
	return c.appendUnit(kind, func(e *wire.Enc) bool {
		e.Raw(body)
		return true
	})
}

// takeBatch blocks until units are pending or the connection dies, lingers
// up to delay for more units to coalesce (unless the batch already holds
// flushBytes), then hands the batch — and the number of units in it — to
// the writer. The caller owns the returned Enc and must Release it.
func (c *tcpConn) takeBatch(delay time.Duration, flushBytes int) (*wire.Enc, int, bool) {
	c.qmu.Lock()
	for c.pending == 0 && !c.dead.Load() {
		c.qcond.Wait()
	}
	if c.pending > 0 && delay > 0 && c.batch.Len() < flushBytes {
		c.qmu.Unlock()
		time.Sleep(delay)
		c.qmu.Lock()
	}
	if c.pending == 0 || c.batch == nil {
		c.qmu.Unlock()
		return nil, 0, false
	}
	e := c.batch
	n := c.pending
	c.batch = nil
	c.pending = 0
	c.oldest.Store(0)
	c.qmu.Unlock()
	return e, n, true
}

// shutdown marks the connection dead exactly once, closing the socket and
// waking the writer (pending units are discarded — the peer is gone).
func (c *tcpConn) shutdown() {
	c.qmu.Lock()
	if !c.dead.Swap(true) {
		if c.batch != nil {
			c.batch.Release()
			c.batch = nil
		}
		c.pending = 0
		c.oldest.Store(0)
		c.qcond.Broadcast()
	}
	c.qmu.Unlock()
	c.c.Close()
}

// NewTCPTransport builds a TCP transport over the shared graph and starts
// listening. Every node starts online; handlers are only consulted for
// local nodes. Close must be called or the listener, dispatcher and
// connection goroutines leak.
func NewTCPTransport(graph *topology.Graph, cfg TCPConfig) (*TCPTransport, error) {
	if len(cfg.Local) == 0 {
		return nil, errors.New("p2p: TCP transport needs at least one local node")
	}
	if cfg.TimerScale <= 0 {
		cfg.TimerScale = time.Millisecond
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = 64 << 20
	}
	if cfg.ReconnectAttempts == 0 {
		cfg.ReconnectAttempts = 8
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = 100 * time.Millisecond
	}
	if cfg.ReconnectMax <= 0 {
		cfg.ReconnectMax = 3 * time.Second
	}
	if cfg.FlushDelay == 0 {
		cfg.FlushDelay = 500 * time.Microsecond
	}
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = 32 << 10
	}
	if cfg.KeepAlive == 0 {
		cfg.KeepAlive = 15 * time.Second
	}
	n := graph.Len()
	t := &TCPTransport{
		graph:        graph,
		cfg:          cfg,
		handler:      make([]Handler, n),
		local:        make([]bool, n),
		hostOf:       make([]string, n),
		conns:        make(map[string]*tcpConn),
		reconnecting: make(map[string]bool),
		closeCh:      make(chan struct{}),
		sentTo:       make(map[string]int64),
		handledFrom:  make(map[string]int64),
		peerHandled:  make(map[string]int64),
		statusCh:     make(map[uint64]chan statusInfo),
		barriers:     make(map[uint32]map[string]bool),
	}
	t.view = liveness.NewView(n, func(id int) bool { return t.IsLocal(NodeID(id)) })
	for _, id := range cfg.Local {
		if id < 0 || int(id) >= n {
			return nil, fmt.Errorf("p2p: local node %d out of range", id)
		}
		t.local[id] = true
	}
	for id, addr := range cfg.Hosts {
		if err := t.setHost(id, addr); err != nil {
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen %s: %w", cfg.Listen, err)
	}
	t.ln = ln
	t.laddr = ln.Addr().String()
	t.eng = newDispatchEngine(n, cfg.Dispatchers, cfg.GroupBy, t.deliver)
	t.wg.Add(1)
	go t.acceptLoop()
	if cfg.KeepAlive > 0 || cfg.MaxBacklogAge > 0 {
		t.wg.Add(1)
		go t.keepaliveLoop()
	}
	return t, nil
}

func (t *TCPTransport) setHost(id NodeID, addr string) error {
	if id < 0 || int(id) >= len(t.hostOf) {
		return fmt.Errorf("p2p: host mapping for out-of-range node %d", id)
	}
	if t.local[id] {
		return fmt.Errorf("p2p: node %d is local, cannot map to %s", id, addr)
	}
	t.hostOf[id] = addr
	return nil
}

// SetHosts installs the node -> process address mapping for remote nodes.
// It must complete before any traffic flows (test setups listen on
// kernel-picked ports first, then exchange addresses).
func (t *TCPTransport) SetHosts(hosts map[NodeID]string) error {
	for id, addr := range hosts {
		if err := t.setHost(id, addr); err != nil {
			return err
		}
	}
	return nil
}

// ListenAddr returns the transport's actual listen address.
func (t *TCPTransport) ListenAddr() string { return t.laddr }

// IsLocal reports whether the node's handlers run in this process.
func (t *TCPTransport) IsLocal(id NodeID) bool {
	return id >= 0 && int(id) < len(t.local) && t.local[id]
}

// LocalIDs returns the sorted ids of the nodes hosted in this process.
func (t *TCPTransport) LocalIDs() []NodeID {
	var out []NodeID
	for i, l := range t.local {
		if l {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// peerAddrs returns the distinct remote process addresses of the host map.
func (t *TCPTransport) peerAddrs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range t.hostOf {
		if a != "" && !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

// WireStats returns a snapshot of the socket-level data-frame counters.
func (t *TCPTransport) WireStats() WireStats {
	t.wireMu.Lock()
	defer t.wireMu.Unlock()
	return t.ws
}

// PeerStat is one live peer connection's flow snapshot (PeerStats).
type PeerStat struct {
	// Addr is the peer process's listen address.
	Addr string
	// SendRate and RecvRate are bytes/sec EWMA estimates of the socket
	// traffic in each direction (length prefixes included).
	SendRate, RecvRate float64
	// SentBytes and RecvBytes are lifetime socket bytes of this connection.
	SentBytes, RecvBytes int64
	// SentUnits and RecvUnits count stream units (data and control).
	SentUnits, RecvUnits int64
	// Flushes counts socket writes; SentUnits/Flushes is the mean batch
	// coalescing factor.
	Flushes int64
	// QueuedUnits and QueuedBytes measure the batch not yet flushed.
	QueuedUnits, QueuedBytes int
	// InFlight is the number of data frames sent to the peer and not yet
	// known handled — refreshed by status exchanges (Settle), so between
	// exchanges it is an upper bound.
	InFlight int64
	// RTT is the last completed keepalive round trip (0 before the first).
	RTT time.Duration
}

// PeerStats snapshots the per-peer flow counters of every registered
// connection, ordered by peer address. It is cheap enough for a signal
// handler: no I/O, a handful of mutexes.
func (t *TCPTransport) PeerStats() []PeerStat {
	t.connMu.Lock()
	addrs := make([]string, 0, len(t.conns))
	conns := make([]*tcpConn, 0, len(t.conns))
	for a, c := range t.conns {
		addrs = append(addrs, a)
		conns = append(conns, c)
	}
	t.connMu.Unlock()
	sort.Sort(&peerStatOrder{addrs, conns})
	out := make([]PeerStat, 0, len(conns))
	for i, c := range conns {
		st := PeerStat{
			Addr:      addrs[i],
			SentUnits: c.sentUnits.Load(),
			RecvUnits: c.recvUnits.Load(),
			Flushes:   c.flushes.Load(),
			RTT:       time.Duration(c.lastRTT.Load()),
		}
		st.SendRate, st.SentBytes = c.sendFlow.snapshot()
		st.RecvRate, st.RecvBytes = c.recvFlow.snapshot()
		c.qmu.Lock()
		st.QueuedUnits = c.pending
		if c.batch != nil {
			st.QueuedBytes = c.batch.Len()
		}
		c.qmu.Unlock()
		t.wireMu.Lock()
		st.InFlight = t.sentTo[st.Addr] - t.peerHandled[st.Addr]
		t.wireMu.Unlock()
		if st.InFlight < 0 {
			st.InFlight = 0
		}
		out = append(out, st)
	}
	return out
}

// peerStatOrder sorts the address and connection slices in lockstep.
type peerStatOrder struct {
	addrs []string
	conns []*tcpConn
}

func (o *peerStatOrder) Len() int           { return len(o.addrs) }
func (o *peerStatOrder) Less(i, j int) bool { return o.addrs[i] < o.addrs[j] }
func (o *peerStatOrder) Swap(i, j int) {
	o.addrs[i], o.addrs[j] = o.addrs[j], o.addrs[i]
	o.conns[i], o.conns[j] = o.conns[j], o.conns[i]
}

// probeInterval picks the keepalive tick: half of the tightest active
// bound (KeepAlive, MaxBacklogAge), floored at one millisecond.
func (t *TCPTransport) probeInterval() time.Duration {
	var iv time.Duration
	if t.cfg.KeepAlive > 0 {
		iv = t.cfg.KeepAlive / 2
	}
	if a := t.cfg.MaxBacklogAge / 2; a > 0 && (iv == 0 || a < iv) {
		iv = a
	}
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// keepaliveLoop probes idle registered connections: a connection that has
// received nothing for KeepAlive gets a ping (the pong carries the RTT
// into PeerStats), and a ping unanswered for 2×KeepAlive tears the
// connection down — the cheap liveness signal for idle links, which would
// otherwise only notice a silently dead peer on the next data frame. The
// same tick enforces MaxBacklogAge: a connection whose oldest unflushed
// unit has waited out the budget is cut (its writer is stuck in a socket
// write the peer refuses to drain).
func (t *TCPTransport) keepaliveLoop() {
	defer t.wg.Done()
	tick := time.NewTicker(t.probeInterval())
	defer tick.Stop()
	for {
		select {
		case <-t.closeCh:
			return
		case now := <-tick.C:
			t.connMu.Lock()
			conns := make([]*tcpConn, 0, len(t.conns))
			for _, c := range t.conns {
				conns = append(conns, c)
			}
			t.connMu.Unlock()
			for _, c := range conns {
				if age := t.cfg.MaxBacklogAge; age > 0 {
					if o := c.oldest.Load(); o != 0 && now.Sub(time.Unix(0, o)) > age {
						t.connDead(c) // writer stalled: the backlog aged out
						continue
					}
				}
				if t.cfg.KeepAlive <= 0 {
					continue
				}
				if ps := c.pingSent.Load(); ps != 0 {
					if now.Sub(time.Unix(0, ps)) > 2*t.cfg.KeepAlive {
						t.connDead(c) // peer hung: ping stayed unanswered
					}
					continue
				}
				if now.Sub(time.Unix(0, c.lastRecv.Load())) < t.cfg.KeepAlive {
					continue
				}
				nanos := now.UnixNano()
				c.pingSent.Store(nanos)
				var e wire.Enc
				e.Uvarint(uint64(nanos))
				c.sendRaw(kPing, e.Bytes())
			}
		}
	}
}

// --- connection management -------------------------------------------------

// helloBody encodes this process's handshake body.
func (t *TCPTransport) helloBody() []byte {
	var e wire.Enc
	e.String(t.laddr)
	locals := t.LocalIDs()
	e.Uvarint(uint64(len(locals)))
	for _, id := range locals {
		e.Varint(int64(id))
	}
	return e.Bytes()
}

// DialPeers connects to every remote process of the host map, retrying
// until the budget elapses — daemons racing to start use it as their
// connect phase.
func (t *TCPTransport) DialPeers(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for _, addr := range t.peerAddrs() {
		for {
			if _, ok := t.liveConn(addr); ok {
				break
			}
			if _, err := t.dial(addr); err == nil {
				break
			} else if time.Now().After(deadline) {
				return fmt.Errorf("p2p: dial %s: %w", addr, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// liveConn returns the registered connection for the address, if any.
func (t *TCPTransport) liveConn(addr string) (*tcpConn, bool) {
	t.connMu.Lock()
	defer t.connMu.Unlock()
	c, ok := t.conns[addr]
	return c, ok
}

// dial opens, registers and hands off one connection to addr.
func (t *TCPTransport) dial(addr string) (*tcpConn, error) {
	c, err := net.DialTimeout("tcp", addr, t.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	conn := newTCPConn(c)
	conn.addr = addr
	t.connMu.Lock()
	if t.closed {
		t.connMu.Unlock()
		c.Close()
		return nil, errors.New("p2p: transport closed")
	}
	if existing, ok := t.conns[addr]; ok {
		// Simultaneous dials: keep the registered one, use the new socket
		// read-only (the peer may have registered it on its side).
		t.connMu.Unlock()
		if t.startConn(conn) {
			conn.sendRaw(kHello, t.helloBody())
		}
		return existing, nil
	}
	t.conns[addr] = conn
	t.connMu.Unlock()
	if !t.startConn(conn) {
		t.connMu.Lock()
		if t.conns[addr] == conn {
			delete(t.conns, addr)
		}
		t.connMu.Unlock()
		return nil, errors.New("p2p: transport closed")
	}
	conn.sendRaw(kHello, t.helloBody())
	return conn, nil
}

// startConn launches the reader and writer goroutines of a connection,
// registering it for Close under the same lock Close sets closed under —
// a connection appearing concurrently with Close is either shut down by
// Close (registered first) or refused here (closed seen first); its
// goroutines can never outlive wg.Wait. It reports whether the connection
// was started.
func (t *TCPTransport) startConn(conn *tcpConn) bool {
	t.connMu.Lock()
	if t.closed {
		t.connMu.Unlock()
		conn.shutdown()
		return false
	}
	t.allConns = append(t.allConns, conn)
	t.wg.Add(2)
	t.connMu.Unlock()
	go t.writeLoop(conn)
	go t.readLoop(conn)
	return true
}

// acceptLoop registers inbound connections; their identity arrives with
// the hello unit.
func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn := newTCPConn(c)
		t.connMu.Lock()
		if t.closed {
			t.connMu.Unlock()
			c.Close()
			return
		}
		t.connMu.Unlock()
		t.startConn(conn)
	}
}

// writeLoop flushes the connection's batch buffer onto the socket: it
// takes whatever units have coalesced (lingering FlushDelay for stragglers
// unless FlushBytes already accumulated), issues one write for the whole
// batch, and returns the buffer to the encoder pool. A write error marks
// the connection dead: subsequent sends to the peer run the drop callback
// instead (§4.3 failure detection for dead connections).
func (t *TCPTransport) writeLoop(conn *tcpConn) {
	defer t.wg.Done()
	for {
		e, units, ok := conn.takeBatch(t.cfg.FlushDelay, t.cfg.FlushBytes)
		if !ok {
			conn.c.Close()
			return
		}
		b := e.Bytes()
		_, err := conn.c.Write(b)
		n := int64(len(b))
		e.Release()
		conn.sendFlow.add(n)
		conn.sentUnits.Add(int64(units))
		conn.flushes.Add(1)
		if err != nil {
			t.connDead(conn)
			return
		}
	}
}

// readLoop parses units off the socket until it breaks. The body buffer is
// reused across units: handleUnit fully consumes every borrowed byte before
// returning (frames decode their payloads through the codecs, control
// bodies are copied), so no allocation rides the per-unit path.
func (t *TCPTransport) readLoop(conn *tcpConn) {
	defer t.wg.Done()
	defer t.connDead(conn)
	br := bufio.NewReader(conn.c)
	hdr := make([]byte, 4)
	var body []byte
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr))
		if n < 1 || n > t.cfg.MaxFrame {
			return // corrupt or hostile length
		}
		if cap(body) < n {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		conn.recvFlow.add(int64(4 + n))
		conn.recvUnits.Add(1)
		conn.lastRecv.Store(time.Now().UnixNano())
		t.handleUnit(conn, body[0], body[1:])
		if cap(body) > maxReadBuf {
			body = nil // give a one-off huge frame's buffer back to the GC
		}
	}
}

// maxReadBuf bounds the reused read buffer kept across units.
const maxReadBuf = 1 << 20

// connDead unregisters a broken connection, shuts it down and — when the
// peer is part of the host map — starts the background reconnect loop.
func (t *TCPTransport) connDead(conn *tcpConn) {
	if conn.dead.Load() {
		return
	}
	conn.shutdown()
	addr := conn.peerAddr()
	wasRegistered := false
	t.connMu.Lock()
	if addr != "" && t.conns[addr] == conn {
		delete(t.conns, addr)
		wasRegistered = true
	}
	t.connMu.Unlock()
	if wasRegistered && t.isPeerAddr(addr) {
		t.scheduleReconnect(addr)
	}
}

// isPeerAddr reports whether the address hosts nodes of the shared map —
// only those peers are worth redialing.
func (t *TCPTransport) isPeerAddr(addr string) bool {
	for _, a := range t.hostOf {
		if a == addr {
			return true
		}
	}
	return false
}

// scheduleReconnect starts one background redial loop for the peer, with
// bounded exponential backoff (TCPConfig.ReconnectAttempts/Backoff/Max).
// At most one loop runs per address; Close aborts the backoff sleep. A
// successful dial re-runs the hello handshake (dial always sends it), after
// which the protocol layer's liveness gossip reconciles the peer's nodes
// back to online in both views.
func (t *TCPTransport) scheduleReconnect(addr string) {
	if t.cfg.ReconnectAttempts < 0 {
		return
	}
	t.connMu.Lock()
	if t.closed || t.reconnecting[addr] {
		t.connMu.Unlock()
		return
	}
	t.reconnecting[addr] = true
	t.wg.Add(1)
	t.connMu.Unlock()
	go func() {
		defer t.wg.Done()
		defer func() {
			t.connMu.Lock()
			delete(t.reconnecting, addr)
			t.connMu.Unlock()
		}()
		backoff := t.cfg.ReconnectBackoff
		for attempt := 0; attempt < t.cfg.ReconnectAttempts; attempt++ {
			select {
			case <-time.After(backoff):
			case <-t.closeCh:
				return
			}
			if _, ok := t.liveConn(addr); ok {
				return // the peer dialed us (or a send-path dial won)
			}
			if _, err := t.dial(addr); err == nil {
				return
			}
			backoff = min(2*backoff, t.cfg.ReconnectMax)
		}
	}()
}

// connFor returns the live connection for addr, dialing once on demand.
func (t *TCPTransport) connFor(addr string) (*tcpConn, bool) {
	conn, ok := t.liveConn(addr)
	if !ok {
		var err error
		if conn, err = t.dial(addr); err != nil {
			return nil, false
		}
	}
	return conn, true
}

// backlogExceeded reports whether the connection's unflushed backlog is
// over the byte budget. It takes and releases the queue lock itself —
// callers must not hold it, because the teardown they trigger on a true
// result (shutdown) locks the same mutex.
func (t *TCPTransport) backlogExceeded(conn *tcpConn) bool {
	if t.cfg.MaxBacklogBytes <= 0 {
		return false
	}
	conn.qmu.Lock()
	queued := 0
	if conn.batch != nil {
		queued = conn.batch.Len()
	}
	conn.qmu.Unlock()
	return queued > t.cfg.MaxBacklogBytes
}

// enqueue hands one control unit to the peer's writer, dialing once on
// demand. It reports false when the peer is unreachable or was cut for
// exceeding its backlog budget.
func (t *TCPTransport) enqueue(addr string, kind byte, body []byte) bool {
	conn, ok := t.connFor(addr)
	if !ok || !conn.sendRaw(kind, body) {
		return false
	}
	if t.backlogExceeded(conn) {
		t.connDead(conn) // stalled peer: cut instead of queueing unboundedly
		return false
	}
	return true
}

// enqueueFrame appends msg's frame as one unit of the given kind straight
// into the peer's batch buffer — the zero-copy send path: the payload
// codec writes into the same pooled buffer the socket write reads from.
// size is the precomputed frame length (frameSize), asserted against what
// the codec actually wrote.
func (t *TCPTransport) enqueueFrame(addr string, kind byte, msg *Message, size int64) bool {
	conn, ok := t.connFor(addr)
	if !ok {
		return false
	}
	ok = conn.appendUnit(kind, func(e *wire.Enc) bool {
		start := e.Len()
		if !appendFrame(e, msg) {
			return false
		}
		if int64(e.Len()-start) != size {
			panic(fmt.Sprintf("p2p: frame for %q measured %d bytes, wrote %d",
				msg.Type, size, e.Len()-start))
		}
		return true
	})
	if ok && t.backlogExceeded(conn) {
		t.connDead(conn) // stalled peer: cut instead of queueing unboundedly
		return false
	}
	return ok
}

// --- unit handling ---------------------------------------------------------

func (t *TCPTransport) handleUnit(conn *tcpConn, kind byte, body []byte) {
	switch kind {
	case kHello:
		d := wire.NewDec(body)
		addr := d.String()
		count := d.Uvarint()
		ids := make([]NodeID, 0, count)
		for i := uint64(0); i < count; i++ {
			ids = append(ids, NodeID(d.Varint()))
		}
		if d.Err() != nil || addr == "" {
			t.connDead(conn)
			return
		}
		// Validate the advertised hosting against our map: a peer claiming
		// nodes we map elsewhere is a topology misconfiguration.
		for _, id := range ids {
			if id >= 0 && int(id) < len(t.hostOf) && t.hostOf[id] != "" && t.hostOf[id] != addr {
				t.connDead(conn)
				return
			}
		}
		conn.mu.Lock()
		conn.addr = addr
		conn.mu.Unlock()
		t.connMu.Lock()
		if _, ok := t.conns[addr]; !ok && !t.closed {
			t.conns[addr] = conn // reuse the inbound socket for replies
		}
		t.connMu.Unlock()
	case kData:
		origin := conn.peerAddr()
		if origin == "" {
			return // data before hello: protocol violation, drop
		}
		msg, err := decodeFrameShared(body)
		if err != nil {
			return // undecodable frame: drop (logged by byte counters' absence)
		}
		t.wireMu.Lock()
		t.ws.RecvFrames++
		t.ws.RecvBytes += int64(len(body))
		t.wireMu.Unlock()
		if !t.IsLocal(msg.To) {
			t.markHandled(origin) // misrouted: processed as far as we ever will
			return
		}
		msg.ID = t.nextMsg.Add(1)
		g, ok := t.eng.beginSend(msg.To)
		if !ok {
			return // transport closed underneath the reader
		}
		t.eng.groups[g].inbox <- envelope{msg: msg, origin: origin}
	case kDropEcho:
		msg, err := decodeFrameShared(body)
		if err != nil {
			return
		}
		t.dropToSender(msg)
	case kStatusReq:
		d := wire.NewDec(body)
		nonce := d.Uvarint()
		if d.Err() != nil {
			return
		}
		origin := conn.peerAddr()
		t.wireMu.Lock()
		handled := t.handledFrom[origin]
		sent := t.sentTo[origin]
		t.wireMu.Unlock()
		var e wire.Enc
		e.Uvarint(nonce)
		e.Uvarint(uint64(handled))
		e.Uvarint(uint64(sent))
		e.Bool(t.eng.idleNow())
		conn.sendRaw(kStatusResp, e.Bytes())
	case kStatusResp:
		d := wire.NewDec(body)
		nonce := d.Uvarint()
		st := statusInfo{handled: int64(d.Uvarint()), sent: int64(d.Uvarint()), idle: d.Bool()}
		if d.Err() != nil {
			return
		}
		if origin := conn.peerAddr(); origin != "" {
			// The peer's handled count doubles as the in-flight baseline of
			// PeerStats, refreshed by every status exchange.
			t.wireMu.Lock()
			if st.handled > t.peerHandled[origin] {
				t.peerHandled[origin] = st.handled
			}
			t.wireMu.Unlock()
		}
		t.statusMu.Lock()
		ch := t.statusCh[nonce]
		delete(t.statusCh, nonce)
		t.statusMu.Unlock()
		if ch != nil {
			ch <- st
		}
	case kBarrier:
		d := wire.NewDec(body)
		tag := uint32(d.Uvarint())
		from := d.String()
		if d.Err() != nil {
			return
		}
		t.barrierMu.Lock()
		if t.barriers[tag] == nil {
			t.barriers[tag] = make(map[string]bool)
		}
		t.barriers[tag][from] = true
		t.barrierMu.Unlock()
	case kPing:
		// Echo the probe body back; the sender computes the RTT from it.
		nanos := append([]byte(nil), body...)
		conn.sendRaw(kPong, nanos)
	case kPong:
		d := wire.NewDec(body)
		sent := int64(d.Uvarint())
		if d.Err() != nil {
			return
		}
		if conn.pingSent.Load() == sent {
			conn.pingSent.Store(0)
			conn.lastRTT.Store(time.Now().UnixNano() - sent)
		}
	}
}

// markHandled counts one data frame from the peer as fully processed.
func (t *TCPTransport) markHandled(origin string) {
	if origin == "" {
		return
	}
	t.wireMu.Lock()
	t.handledFrom[origin]++
	t.wireMu.Unlock()
}

// dropToSender runs the drop callback for msg in its (local) sender's
// dispatch group. The forward rides its own goroutine so a dispatcher
// enqueueing into its own full inbox cannot deadlock. Drop echoes arrive
// from socket readers, which outlive the dispatchers during Close, so the
// pending count goes through the closed-checked path.
func (t *TCPTransport) dropToSender(msg *Message) {
	if msg.From < 0 || !t.IsLocal(msg.From) {
		return
	}
	g := t.eng.groupFor(msg.From)
	if !t.eng.beginSendGroup(g) {
		return // transport closed underneath the reader
	}
	go func() { t.eng.groups[g].inbox <- envelope{msg: msg, isDrop: true} }()
}

// --- delivery --------------------------------------------------------------

// deliver implements the transport's delivery policy on the dispatch
// engine: run the local handler, or route the drop notification — to the
// local sender's group like the channel transport, or back over the socket
// when the sender lives in another process.
func (t *TCPTransport) deliver(g int, env envelope) {
	msg := env.msg
	if env.isDrop {
		t.mu.Lock()
		drop := t.drop
		t.mu.Unlock()
		if drop != nil {
			drop(msg)
		}
		t.eng.finishPending(g)
		return
	}
	up := t.view.Online(int(msg.To)) && !t.gate.severed(msg.From, msg.To)
	t.mu.Lock()
	h := t.handler[msg.To]
	drop := t.drop
	t.mu.Unlock()
	if up && h != nil {
		h(msg)
		t.markHandled(env.origin)
		t.eng.finishPending(g)
		return
	}
	// Destination offline or handler-less: failure detection (§4.3). The
	// frame itself is processed either way.
	t.markHandled(env.origin)
	switch {
	case msg.From >= 0 && t.IsLocal(msg.From):
		if drop != nil {
			gFrom := t.eng.groupFor(msg.From)
			if gFrom == g {
				drop(msg)
			} else {
				t.eng.movePending(gFrom, g)
				go func() { t.eng.groups[gFrom].inbox <- envelope{msg: msg, isDrop: true} }()
				return
			}
		}
	case env.origin != "":
		// Bounce the frame to the sender's process; its transport runs the
		// drop callback in the sender's group.
		if size, ok := frameSize(msg); ok {
			t.enqueueFrame(env.origin, kDropEcho, msg, size)
		}
	}
	t.eng.finishPending(g)
}

// --- Transport interface ---------------------------------------------------

// Len returns the number of overlay nodes.
func (t *TCPTransport) Len() int { return t.graph.Len() }

// Graph exposes the shared overlay topology.
func (t *TCPTransport) Graph() *topology.Graph { return t.graph }

// DispatchGroups returns the number of dispatch groups (>= 1).
func (t *TCPTransport) DispatchGroups() int { return t.eng.groupCount() }

// SetGroupBy replaces the node -> dispatch-group mapping while the
// transport is pristine (no message sent yet); see
// ChannelTransport.SetGroupBy for the contract.
func (t *TCPTransport) SetGroupBy(fn func(NodeID) int) bool {
	if fn == nil || t.nextMsg.Load() != 0 {
		return false
	}
	return t.eng.remap(fn)
}

// Counter returns a merged snapshot of the per-group message counters
// (see ChannelTransport.Counter).
func (t *TCPTransport) Counter() *stats.Counter { return t.eng.mergedCounter() }

// Bytes returns a merged snapshot of the per-type traffic volumes. Every
// serializable message is charged its encoded frame length, so the total
// equals the sum of frame lengths that crossed sockets plus those
// delivered locally (cross-check with WireStats).
func (t *TCPTransport) Bytes() *stats.Counter { return t.eng.mergedVolume() }

// SetHandler installs the message handler of a node (consulted only for
// local nodes).
func (t *TCPTransport) SetHandler(id NodeID, h Handler) {
	t.mu.Lock()
	t.handler[id] = h
	t.mu.Unlock()
}

// SetDrop installs the drop callback (§4.3 failure detection). It runs in
// the dispatch group of the message's sender — also when the drop happened
// in another process and was echoed back.
func (t *TCPTransport) SetDrop(fn func(*Message)) {
	t.mu.Lock()
	t.drop = fn
	t.mu.Unlock()
}

// Liveness returns this process's membership view: authoritative for the
// local nodes, convergent on the remote ones through the protocol layer's
// liveness gossip (remote nodes default to alive until evidence arrives).
func (t *TCPTransport) Liveness() *liveness.View { return t.view }

// Online reports this process's view of a node's connectivity.
func (t *TCPTransport) Online(id NodeID) bool { return t.view.Online(int(id)) }

// SetOnline flips a node's connectivity in this process's view.
func (t *TCPTransport) SetOnline(id NodeID, up bool) {
	if up {
		t.view.MarkAlive(int(id))
	} else {
		t.view.MarkDead(int(id))
	}
}

// OnlineCount returns the number of nodes online in this process's view.
func (t *TCPTransport) OnlineCount() int { return t.view.OnlineCount() }

// OnlineIDs returns the sorted ids of nodes online in this process's view.
func (t *TCPTransport) OnlineIDs() []NodeID { return onlineNodeIDs(t.view) }

// Neighbors returns the online neighbors of a node, in ascending id order.
// Links severed by the installed LinkFilter are not traversable.
func (t *TCPTransport) Neighbors(id NodeID) []NodeID {
	var out []NodeID
	for _, v := range t.graph.Neighbors(int(id)) {
		if t.view.Online(v) && !t.gate.severed(id, NodeID(v)) {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// SetLinkFilter installs the partition hook (see Transport.SetLinkFilter).
// On a TCP deployment every process installs the same scripted filter: an
// outbound frame on a severed link is charged and dropped before the
// socket, and a frame that slipped out before the cut is dropped (and
// drop-echoed to its origin) at delivery time on the receiving side, so
// both directions degrade even if installation is not simultaneous.
func (t *TCPTransport) SetLinkFilter(fn LinkFilter) { t.gate.set(fn) }

// Degree returns the node's static overlay degree.
func (t *TCPTransport) Degree(id NodeID) int { return t.graph.Degree(int(id)) }

// HopsWithin returns BFS hop distances from src, bounded by radius.
func (t *TCPTransport) HopsWithin(src NodeID, radius int) map[NodeID]int {
	dist := t.graph.BFSWithin(int(src), radius)
	out := make(map[NodeID]int, len(dist))
	for v, d := range dist {
		out[NodeID(v)] = d
	}
	return out
}

// charge accounts n payload-less transmissions (walks and floods) under
// group 0, like the channel transport; WireStats books them as frameless.
func (t *TCPTransport) charge(typ string, n int64) {
	t.eng.chargeBulk(0, typ, n)
	t.chargeFrameless(n, n*BaseMessageBytes)
}

// chargeFrameless records traffic charged without an encoded frame.
func (t *TCPTransport) chargeFrameless(msgs, bytes int64) {
	t.wireMu.Lock()
	t.ws.ChargedMsgs += msgs
	t.ws.ChargedBytes += bytes
	t.wireMu.Unlock()
}

// chargeGroupOf picks the counter group for a send: the local sender's
// group, or group 0 for frames originated by drivers on behalf of remote
// nodes (which should not happen in a well-partitioned deployment).
func (t *TCPTransport) chargeGroupOf(msg *Message) int {
	if msg.From >= 0 && t.IsLocal(msg.From) {
		return t.eng.groupFor(msg.From)
	}
	return 0
}

// Send serializes the message into a wire frame and delivers it: frames
// for local nodes go through the dispatch engine (decoded back through the
// codec, so local and remote delivery share one serialization pipeline),
// frames for remote nodes ride the peer connection's writer goroutine. A
// message whose payload has no registered codec can only be delivered
// locally (shared-memory fallback, Sizer accounting); sending one to a
// remote node counts it as sent and runs the drop callback. Messages to
// unreachable processes (dead connections, failed dials) are likewise
// counted and dropped — the §4.3 failure-detection path.
func (t *TCPTransport) Send(msg *Message) {
	if msg.To < 0 || int(msg.To) >= t.graph.Len() {
		panic(fmt.Sprintf("p2p: send to out-of-range node %d", msg.To))
	}
	if t.eng.isClosed() {
		panic("p2p: send on closed TCPTransport")
	}
	id := t.nextMsg.Add(1)
	if msg.ID == 0 {
		msg.ID = id
	}
	size, framed := frameSize(msg)

	if t.IsLocal(msg.To) {
		if framed {
			// Round-trip through the codec out of a pooled buffer: local
			// delivery observes exactly what a remote process would have
			// decoded, without the old Encode allocation.
			e := wire.GetEnc()
			if appendFrame(e, msg) {
				if m2, err := decodeFrameShared(e.Bytes()); err == nil {
					m2.ID = msg.ID
					msg = m2
				}
			}
			e.Release()
			t.wireMu.Lock()
			t.ws.LocalFrames++
			t.ws.LocalBytes += size
			t.wireMu.Unlock()
		} else {
			size = int64(BaseMessageBytes)
			if s, ok := msg.Payload.(Sizer); ok {
				size += int64(s.WireSize())
			}
			t.chargeFrameless(1, size)
		}
		g, ok := t.eng.beginSend(msg.To)
		if !ok {
			panic("p2p: send on closed TCPTransport")
		}
		t.eng.chargeMessage(g, msg.Type, size)
		go func() { t.eng.groups[g].inbox <- envelope{msg: msg} }()
		return
	}

	addr := t.hostOf[msg.To]
	g := t.chargeGroupOf(msg)
	if !framed {
		size = int64(BaseMessageBytes)
		if s, ok := msg.Payload.(Sizer); ok {
			size += int64(s.WireSize())
		}
		t.eng.chargeMessage(g, msg.Type, size)
		t.chargeFrameless(1, size)
		t.dropToSender(msg)
		return
	}
	t.eng.chargeMessage(g, msg.Type, size)
	if t.gate.severed(msg.From, msg.To) {
		// Partitioned link: the frame is charged as sent but never reaches
		// the socket — the sender observes the same §4.3 drop evidence a
		// dead connection produces.
		t.chargeFrameless(1, size)
		t.dropToSender(msg)
		return
	}
	if addr == "" || !t.enqueueFrame(addr, kData, msg, size) {
		// Unmapped node or dead connection: the message was charged as
		// sent (the bytes hit the wire as far as accounting is concerned)
		// but no frame bucket took it — book it frameless so the
		// WireStats identity survives the §4.3 failure path.
		t.chargeFrameless(1, size)
		t.dropToSender(msg)
		return
	}
	t.wireMu.Lock()
	t.sentTo[addr]++
	t.ws.SentFrames++
	t.ws.SentBytes += size
	t.wireMu.Unlock()
}

// SendNew builds and sends a message.
func (t *TCPTransport) SendNew(typ string, from, to NodeID, ttl int, payload any) {
	t.Send(&Message{Type: typ, From: from, To: to, TTL: ttl, Payload: payload})
}

// Flood delivers a message of the given type from src to every node within
// ttl hops using Gnutella-style constrained broadcast, traversing the
// shared topology in this process (§6.2.3 accounting semantics).
func (t *TCPTransport) Flood(typ string, src NodeID, ttl int, payload any, visit func(NodeID)) map[NodeID]bool {
	return runFlood(t, typ, src, ttl, visit)
}

// SelectiveWalk performs the §4.1 find-protocol walk over the shared
// topology; the accept callback only sees local protocol state.
func (t *TCPTransport) SelectiveWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(t, typ, src, maxHops, accept, selectiveChoice(t.Degree))
}

// RandomWalk is the blind baseline walk (same locality caveat as
// SelectiveWalk). The choice is pseudo-random per call.
func (t *TCPTransport) RandomWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	step := t.nextMsg.Add(1)
	return runWalk(t, typ, src, maxHops, accept, func(cands []NodeID) NodeID {
		step = step*6364136223846793005 + 1442695040888963407
		return cands[int(step>>33)%len(cands)]
	})
}

// Exec runs fn serialized with every local handler (see
// ChannelTransport.Exec). It quiesces this process only — align remote
// drivers with Barrier.
func (t *TCPTransport) Exec(fn func()) { t.eng.exec(fn) }

// After schedules fn on the dispatcher of owner's group, delaySeconds of
// virtual time from now, scaled by TimerScale (see ChannelTransport.After
// for the serialization and Settle/Close contract).
func (t *TCPTransport) After(owner NodeID, delaySeconds float64, fn func()) {
	t.eng.after(owner, time.Duration(delaySeconds*float64(t.cfg.TimerScale)), fn)
}

// Settle blocks until the whole deployment is quiescent as far as this
// process can observe: the local dispatch groups are drained and every
// reachable peer reports, twice in a row with unchanged counters, that it
// is idle, has handled every data frame we sent it, and has sent nothing
// we have not handled. Unreachable peers are treated as departed (their
// frames were dropped). Calling Settle from a handler panics.
func (t *TCPTransport) Settle() {
	if t.eng.onDispatcher() {
		panic("p2p: Settle called from a handler/timer on the dispatcher (would deadlock); drivers only")
	}
	stable := 0
	prev := make(map[string][2]int64)
	for stable < 2 {
		t.eng.waitIdle()
		quiet := true
		cur := make(map[string][2]int64)
		for _, addr := range t.peerAddrs() {
			if _, ok := t.liveConn(addr); !ok {
				continue // unreachable: nothing in flight we could wait for
			}
			st, ok := t.peerStatus(addr, 2*time.Second)
			if !ok {
				// The peer is connected but did not answer in time (e.g.
				// buried in a long merge): not quiescent — only a departed
				// peer (no live connection) may be skipped.
				quiet = false
				continue
			}
			t.wireMu.Lock()
			mySent := t.sentTo[addr]
			myHandled := t.handledFrom[addr]
			t.wireMu.Unlock()
			if !st.idle || st.handled != mySent || st.sent != myHandled {
				quiet = false
			}
			cur[addr] = [2]int64{st.handled, st.sent}
		}
		if !t.eng.idleNow() {
			quiet = false
		}
		if quiet && mapsEqual(cur, prev) {
			stable++
		} else {
			stable = 0
		}
		prev = cur
		if stable < 2 {
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func mapsEqual(a, b map[string][2]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// peerStatus asks one peer for its settle counters.
func (t *TCPTransport) peerStatus(addr string, timeout time.Duration) (statusInfo, bool) {
	ch := make(chan statusInfo, 1)
	t.statusMu.Lock()
	t.nonce++
	nonce := t.nonce
	t.statusCh[nonce] = ch
	t.statusMu.Unlock()
	var e wire.Enc
	e.Uvarint(nonce)
	if !t.enqueue(addr, kStatusReq, e.Bytes()) {
		t.statusMu.Lock()
		delete(t.statusCh, nonce)
		t.statusMu.Unlock()
		return statusInfo{}, false
	}
	select {
	case st := <-ch:
		return st, true
	case <-time.After(timeout):
		t.statusMu.Lock()
		delete(t.statusCh, nonce)
		t.statusMu.Unlock()
		return statusInfo{}, false
	}
}

// Barrier aligns driver phases across processes: it announces the tag to
// every peer process and blocks until every peer's announcement for the
// same tag has arrived (announcements are sticky, so arrival order does
// not matter). Use distinct tags per phase.
func (t *TCPTransport) Barrier(tag uint32, timeout time.Duration) error {
	peers := t.peerAddrs()
	var e wire.Enc
	e.Uvarint(uint64(tag))
	e.String(t.laddr)
	for _, addr := range peers {
		if !t.enqueue(addr, kBarrier, e.Bytes()) {
			return fmt.Errorf("p2p: barrier %d: peer %s unreachable", tag, addr)
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		t.barrierMu.Lock()
		missing := 0
		for _, addr := range peers {
			if !t.barriers[tag][addr] {
				missing++
			}
		}
		t.barrierMu.Unlock()
		if missing == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("p2p: barrier %d: %d peers missing after %v", tag, missing, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close settles the local dispatch groups, shuts the listener and every
// connection down and stops the dispatchers. Sending afterwards panics.
func (t *TCPTransport) Close() {
	t.connMu.Lock()
	if t.closed {
		t.connMu.Unlock()
		return
	}
	t.closed = true
	close(t.closeCh)
	conns := append([]*tcpConn(nil), t.allConns...)
	t.connMu.Unlock()
	t.ln.Close()
	t.eng.closeEngine()
	for _, c := range conns {
		c.shutdown()
	}
	t.wg.Wait()
}
