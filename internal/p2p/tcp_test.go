package p2p

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"p2psum/internal/topology"
	"p2psum/internal/wire"
)

// The TCP transport suite runs two real transports over loopback sockets
// inside one test process: handler delivery across processes, the
// drop-echo failure-detection path, distributed settle under ping-pong
// traffic, barriers, and the frame-exact byte accounting.

// tcpTestPayload is a codec-registered test payload.
type tcpTestPayload struct {
	N    int64
	Text string
}

func init() {
	wire.Register("tcp-test", wire.PayloadCodec{
		Encode: func(e *wire.Enc, payload any) error {
			p := payload.(tcpTestPayload)
			e.Varint(p.N)
			e.String(p.Text)
			return nil
		},
		Decode: func(data []byte) (any, error) {
			d := wire.NewDec(data)
			p := tcpTestPayload{N: d.Varint(), Text: d.String()}
			return p, d.Done()
		},
	})
}

// tcpPair builds two connected transports over a line graph: a hosts the
// first split nodes, b the rest.
func tcpPair(t *testing.T, n, split int) (a, b *TCPTransport) {
	t.Helper()
	g := topology.NewGraph(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	var localA, localB []NodeID
	for i := 0; i < n; i++ {
		if i < split {
			localA = append(localA, NodeID(i))
		} else {
			localB = append(localB, NodeID(i))
		}
	}
	a, err := NewTCPTransport(g, TCPConfig{Listen: "127.0.0.1:0", Local: localA})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err = NewTCPTransport(g, TCPConfig{Listen: "127.0.0.1:0", Local: localB})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	hostsA := make(map[NodeID]string)
	hostsB := make(map[NodeID]string)
	for _, id := range localB {
		hostsA[id] = b.ListenAddr()
	}
	for _, id := range localA {
		hostsB[id] = a.ListenAddr()
	}
	if err := a.SetHosts(hostsA); err != nil {
		t.Fatal(err)
	}
	if err := b.SetHosts(hostsB); err != nil {
		t.Fatal(err)
	}
	if err := a.DialPeers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.DialPeers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestTCPDeliveryAcrossProcesses(t *testing.T) {
	a, b := tcpPair(t, 2, 1)
	var (
		mu  sync.Mutex
		got []tcpTestPayload
	)
	b.SetHandler(1, func(msg *Message) {
		mu.Lock()
		got = append(got, msg.Payload.(tcpTestPayload))
		mu.Unlock()
	})
	want := tcpTestPayload{N: -77, Text: "hello over tcp"}
	a.SendNew("tcp-test", 0, 1, 0, want)
	a.Settle()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != want {
		t.Fatalf("delivered %v, want [%v]", got, want)
	}
	if c := a.Counter().Get("tcp-test"); c != 1 {
		t.Errorf("sender counted %d messages", c)
	}
}

func TestTCPDropEchoForOfflineRemote(t *testing.T) {
	a, b := tcpPair(t, 2, 1)
	b.SetHandler(1, func(*Message) {})
	b.SetOnline(1, false)
	var dropped atomic.Int64
	a.SetDrop(func(msg *Message) {
		if msg.To == 1 && msg.From == 0 {
			dropped.Add(1)
		}
	})
	a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: 1})
	// The echo crosses two sockets; distributed settle must cover it.
	a.Settle()
	b.Settle()
	if dropped.Load() != 1 {
		t.Fatalf("drop callback ran %d times, want 1", dropped.Load())
	}
}

func TestTCPSettleCoversPingPong(t *testing.T) {
	a, b := tcpPair(t, 2, 1)
	const rounds = 20
	var hops atomic.Int64
	// Each delivery volleys the message back until TTL is exhausted: the
	// chain crosses the socket 2*rounds times and Settle on the driver
	// side must wait for all of it.
	volley := func(tr *TCPTransport) Handler {
		return func(msg *Message) {
			hops.Add(1)
			if msg.TTL > 0 {
				tr.SendNew("tcp-test", msg.To, msg.From, msg.TTL-1, tcpTestPayload{N: int64(msg.TTL)})
			}
		}
	}
	a.SetHandler(0, volley(a))
	b.SetHandler(1, volley(b))
	a.SendNew("tcp-test", 0, 1, 2*rounds, tcpTestPayload{})
	a.Settle()
	if got := hops.Load(); got != 2*rounds+1 {
		t.Fatalf("settle returned after %d hops, want %d", got, 2*rounds+1)
	}
}

func TestTCPByteAccountingFrameExact(t *testing.T) {
	a, b := tcpPair(t, 3, 2)
	a.SetHandler(1, func(*Message) {})
	b.SetHandler(2, func(*Message) {})
	for i := 0; i < 5; i++ {
		a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: int64(i), Text: "local"})  // stays in-process
		a.SendNew("tcp-test", 0, 2, 0, tcpTestPayload{N: int64(i), Text: "remote"}) // crosses the socket
	}
	a.Settle()
	b.Settle()
	wsA, wsB := a.WireStats(), b.WireStats()
	if wsA.SentFrames != 5 || wsA.LocalFrames != 5 {
		t.Fatalf("wire stats = %+v, want 5 sent + 5 local", wsA)
	}
	// Every byte that left A's socket arrived at B, length-verified.
	if wsA.SentBytes != wsB.RecvBytes || wsB.RecvFrames != wsA.SentFrames {
		t.Fatalf("A sent %d B in %d frames, B received %d B in %d frames",
			wsA.SentBytes, wsA.SentFrames, wsB.RecvBytes, wsB.RecvFrames)
	}
	// The reported volume is exactly the sum of encoded frame lengths.
	if total := a.Bytes().Total(); total != wsA.SentBytes+wsA.LocalBytes {
		t.Fatalf("Bytes() total = %d, want sent %d + local %d", total, wsA.SentBytes, wsA.LocalBytes)
	}
	// And it matches an independent re-encoding of the frames.
	var want int64
	for i := 0; i < 5; i++ {
		for to, text := range map[NodeID]string{1: "local", 2: "remote"} {
			frame, ok := encodeFrame(&Message{Type: "tcp-test", From: 0, To: to,
				Payload: tcpTestPayload{N: int64(i), Text: text}})
			if !ok {
				t.Fatal("test payload not frameable")
			}
			want += int64(len(frame))
		}
	}
	if total := a.Bytes().Total(); total != want {
		t.Fatalf("Bytes() total = %d, want re-encoded sum %d", total, want)
	}
}

// TestFrameSizeMatchesEncode pins the counting path (what the in-memory
// transports charge) to the buffer path (what the TCP transport puts on
// the socket): the two must agree byte-for-byte or cross-transport byte
// figures drift apart.
func TestFrameSizeMatchesEncode(t *testing.T) {
	for _, msg := range []*Message{
		{Type: "plain", From: 0, To: 1},
		{Type: "x", From: 1 << 18, To: 3, TTL: 7, Hops: 12},
		{Type: "tcp-test", From: 3, To: 9, TTL: 4, Hops: 2,
			Payload: tcpTestPayload{N: -12345, Text: "sized-exactly"}},
		{Type: "tcp-test", From: 0, To: 0, Payload: tcpTestPayload{}},
	} {
		frame, okE := encodeFrame(msg)
		size, okS := frameSize(msg)
		if !okE || !okS {
			t.Fatalf("%+v not frameable (encode %v, size %v)", msg, okE, okS)
		}
		if int64(len(frame)) != size {
			t.Errorf("%+v: frameSize %d != encoded length %d", msg, size, len(frame))
		}
	}
}

func TestTCPBarrier(t *testing.T) {
	a, b := tcpPair(t, 2, 1)
	var reached atomic.Int32
	done := make(chan error, 2)
	go func() {
		err := a.Barrier(1, 5*time.Second)
		reached.Add(1)
		done <- err
	}()
	go func() {
		time.Sleep(50 * time.Millisecond) // b arrives late; a must wait
		err := b.Barrier(1, 5*time.Second)
		reached.Add(1)
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if reached.Load() != 2 {
		t.Fatal("barrier released without both sides")
	}
}

// TestTCPReconnectWithBackoff breaks the registered peer link and asserts
// the background redial loop re-establishes it — re-handshaking hello — so
// a later send crosses the socket again instead of dying in the drop path.
func TestTCPReconnectWithBackoff(t *testing.T) {
	a, b := tcpPair(t, 2, 1)
	var delivered atomic.Int64
	b.SetHandler(1, func(*Message) { delivered.Add(1) })
	a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: 1})
	a.Settle()
	if delivered.Load() != 1 {
		t.Fatalf("pre-break delivery count = %d", delivered.Load())
	}

	// Break the link from A's side: both endpoints observe the dead socket
	// and start their bounded-backoff redial loops.
	conn, ok := a.liveConn(b.ListenAddr())
	if !ok {
		t.Fatal("no registered connection to B")
	}
	a.connDead(conn)

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := a.liveConn(b.ListenAddr()); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reconnect loop never re-registered the peer connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
	a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: 2})
	a.Settle()
	b.Settle()
	if delivered.Load() != 2 {
		t.Fatalf("post-reconnect delivery count = %d, want 2", delivered.Load())
	}
}

// TestTCPReconnectDisabled pins the opt-out: with a negative attempt budget
// a broken link stays broken until a send-path dial re-establishes it.
func TestTCPReconnectDisabled(t *testing.T) {
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 0.01); err != nil {
		t.Fatal(err)
	}
	a, err := NewTCPTransport(g, TCPConfig{Listen: "127.0.0.1:0", Local: []NodeID{0}, ReconnectAttempts: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	b, err := NewTCPTransport(g, TCPConfig{Listen: "127.0.0.1:0", Local: []NodeID{1}, ReconnectAttempts: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	if err := a.SetHosts(map[NodeID]string{1: b.ListenAddr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetHosts(map[NodeID]string{0: a.ListenAddr()}); err != nil {
		t.Fatal(err)
	}
	if err := a.DialPeers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	conn, ok := a.liveConn(b.ListenAddr())
	if !ok {
		t.Fatal("no registered connection to B")
	}
	a.connDead(conn)
	time.Sleep(300 * time.Millisecond)
	if _, ok := a.liveConn(b.ListenAddr()); ok {
		t.Fatal("connection re-registered although reconnection is disabled")
	}
}

// stallListener accepts connections and never reads them, so a sender's
// socket and batch buffer fill up — the stalled-peer scenario of the
// backpressure budget.
func stallListener(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var held []net.Conn
	done := make(chan struct{})
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				close(done)
				return
			}
			mu.Lock()
			held = append(held, c)
			mu.Unlock()
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		<-done
		mu.Lock()
		for _, c := range held {
			c.Close()
		}
		mu.Unlock()
	})
	return ln.Addr().String()
}

// TestTCPBacklogBytesCutsStalledPeer floods a peer that accepts but never
// reads: once the kernel buffers fill, the writer blocks mid-write, the
// batch accumulates past MaxBacklogBytes and the budget cuts the
// connection — the sender falls into the §4.3 drop path instead of
// queueing memory without bound.
func TestTCPBacklogBytesCutsStalledPeer(t *testing.T) {
	addr := stallListener(t)
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 0.01); err != nil {
		t.Fatal(err)
	}
	const budget = 32 << 10
	a, err := NewTCPTransport(g, TCPConfig{
		Listen:            "127.0.0.1:0",
		Local:             []NodeID{0},
		Hosts:             map[NodeID]string{1: addr},
		ReconnectAttempts: -1,
		MaxBacklogBytes:   budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	var dropped atomic.Int64
	a.SetDrop(func(msg *Message) {
		if msg.To == 1 {
			dropped.Add(1)
		}
	})
	// 16 KiB frames: two are enough to trip the budget once the writer is
	// stuck, and the kernel buffers hold at most a few MB before that.
	payload := tcpTestPayload{Text: strings.Repeat("x", 16<<10)}
	cut := false
	for i := 0; i < 2000; i++ {
		a.SendNew("tcp-test", 0, 1, 0, payload)
		if _, ok := a.liveConn(addr); !ok {
			cut = true
			break
		}
	}
	if !cut {
		t.Fatal("stalled peer was never disconnected by the backlog budget")
	}
	// The send that tripped the budget was rerouted into the §4.3 drop
	// path (its frame died with the cut batch). Drop callbacks run on the
	// dispatcher, so settle before asserting.
	a.Settle()
	if dropped.Load() == 0 {
		t.Fatal("no send classified as dropped despite the cut")
	}
}

// TestTCPBacklogAgeCutsStalledPeer pins the time-domain budget: a unit
// sitting unflushed past MaxBacklogAge gets the connection cut on the
// keepalive tick even when the byte budget is never reached.
func TestTCPBacklogAgeCutsStalledPeer(t *testing.T) {
	addr := stallListener(t)
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 0.01); err != nil {
		t.Fatal(err)
	}
	a, err := NewTCPTransport(g, TCPConfig{
		Listen:            "127.0.0.1:0",
		Local:             []NodeID{0},
		Hosts:             map[NodeID]string{1: addr},
		ReconnectAttempts: -1,
		KeepAlive:         -1, // only the age budget runs the prober
		MaxBacklogAge:     30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: 1})
	conn, ok := a.liveConn(addr)
	if !ok {
		t.Fatal("no registered connection after the first send")
	}
	// Pretend the oldest unit has been waiting for a while: the next tick
	// must cut the connection. (Filling real kernel buffers to stall the
	// writer takes megabytes; the bytes-budget test above covers that.)
	// Wait out the first flush first, or the writer's takeBatch zeroes the
	// fake timestamp from under us.
	for deadline := time.Now().Add(3 * time.Second); conn.flushes.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("first unit never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	conn.oldest.Store(time.Now().Add(-time.Second).UnixNano())
	deadline := time.Now().Add(3 * time.Second)
	for {
		if conn.dead.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aged backlog never cut the connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := a.liveConn(addr); ok {
		t.Fatal("cut connection still registered")
	}
}

func TestTCPUnserializablePayloadDropsRemotely(t *testing.T) {
	a, b := tcpPair(t, 2, 1)
	b.SetHandler(1, func(*Message) {})
	var dropped atomic.Int64
	a.SetDrop(func(*Message) { dropped.Add(1) })
	a.SendNew("no-codec-type", 0, 1, 0, struct{ X int }{X: 1})
	a.Settle()
	if dropped.Load() != 1 {
		t.Fatalf("unserializable remote send dropped %d times, want 1", dropped.Load())
	}
	// A payload-less message of the same type is frameable and delivers.
	var delivered atomic.Int64
	b.SetHandler(1, func(*Message) { delivered.Add(1) })
	a.SendNew("no-codec-type", 0, 1, 0, nil)
	a.Settle()
	b.Settle()
	if delivered.Load() != 1 {
		t.Fatalf("nil-payload message delivered %d times, want 1", delivered.Load())
	}
}
