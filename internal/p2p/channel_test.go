package p2p

import (
	"math/rand"
	"sync"
	"testing"

	"p2psum/internal/sim"
	"p2psum/internal/topology"
)

func testGraph(t *testing.T, n int, seed int64) *topology.Graph {
	t.Helper()
	g, err := topology.BarabasiAlbert(n, 2, nil, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestChannelTransportDelivery(t *testing.T) {
	g := testGraph(t, 32, 1)
	ct := NewChannelTransport(g, 1, DefaultChannelConfig())
	defer ct.Close()

	var mu sync.Mutex
	got := make(map[NodeID]int)
	for i := 0; i < ct.Len(); i++ {
		id := NodeID(i)
		ct.SetHandler(id, func(msg *Message) {
			mu.Lock()
			got[id]++
			mu.Unlock()
		})
	}
	for i := 1; i < ct.Len(); i++ {
		ct.SendNew("ping", 0, NodeID(i), 0, nil)
	}
	ct.Settle()

	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < ct.Len(); i++ {
		if got[NodeID(i)] != 1 {
			t.Errorf("node %d received %d messages, want 1", i, got[NodeID(i)])
		}
	}
	if n := ct.Counter().Get("ping"); n != int64(ct.Len()-1) {
		t.Errorf("counter = %d, want %d", n, ct.Len()-1)
	}
}

func TestChannelTransportHandlersSendMore(t *testing.T) {
	// A handler that relays must have its sends drained by Settle too.
	g := testGraph(t, 16, 2)
	ct := NewChannelTransport(g, 2, ChannelConfig{})
	defer ct.Close()

	var mu sync.Mutex
	reached := 0
	ct.SetHandler(1, func(msg *Message) {
		ct.SendNew("relay", 1, 2, 0, nil)
	})
	ct.SetHandler(2, func(msg *Message) {
		mu.Lock()
		reached++
		mu.Unlock()
	})
	ct.SendNew("start", 0, 1, 0, nil)
	ct.Settle()

	mu.Lock()
	defer mu.Unlock()
	if reached != 1 {
		t.Fatalf("relayed message not delivered before Settle returned (reached=%d)", reached)
	}
}

func TestChannelTransportOfflineDrop(t *testing.T) {
	g := testGraph(t, 16, 3)
	ct := NewChannelTransport(g, 3, ChannelConfig{})
	defer ct.Close()

	var mu sync.Mutex
	var dropped []NodeID
	ct.SetDrop(func(msg *Message) {
		mu.Lock()
		dropped = append(dropped, msg.To)
		mu.Unlock()
	})
	ct.SetHandler(5, func(msg *Message) { t.Error("offline node got a message") })
	ct.SetOnline(5, false)
	ct.SendNew("push", 0, 5, 0, nil)
	ct.Settle()

	mu.Lock()
	defer mu.Unlock()
	if len(dropped) != 1 || dropped[0] != 5 {
		t.Fatalf("dropped = %v, want [5]", dropped)
	}
	if ct.Counter().Get("push") != 1 {
		t.Error("dropped message must still be counted as sent")
	}
	if ct.OnlineCount() != ct.Len()-1 {
		t.Errorf("online count = %d, want %d", ct.OnlineCount(), ct.Len()-1)
	}
}

func TestChannelTransportLoss(t *testing.T) {
	g := testGraph(t, 8, 4)
	ct := NewChannelTransport(g, 4, ChannelConfig{LossRate: 1.0})
	defer ct.Close()

	delivered, droppedCb := 0, 0
	ct.SetHandler(1, func(msg *Message) { delivered++ })
	ct.SetDrop(func(msg *Message) { droppedCb++ })
	for i := 0; i < 50; i++ {
		ct.SendNew("lossy", 0, 1, 0, nil)
	}
	ct.Settle()
	if delivered != 0 {
		t.Errorf("delivered %d messages at 100%% loss", delivered)
	}
	if droppedCb != 0 {
		t.Errorf("packet loss must be silent, drop callback fired %d times", droppedCb)
	}
	if ct.Counter().Get("lossy") != 50 {
		t.Errorf("lost messages must be counted as sent, got %d", ct.Counter().Get("lossy"))
	}
}

// TestTransportParity pins both transports to identical traversal
// semantics: floods and selective walks are deterministic given the same
// graph and online state, so reach sets and message charges must match.
func TestTransportParity(t *testing.T) {
	g := testGraph(t, 200, 5)
	net := NewNetwork(sim.New(), g, 5)
	ct := NewChannelTransport(g, 5, ChannelConfig{})
	defer ct.Close()

	for _, tr := range []Transport{net, ct} {
		tr.SetOnline(7, false)
		tr.SetOnline(13, false)
	}

	fn := net.Flood("f", 0, 3, nil, nil)
	fc := ct.Flood("f", 0, 3, nil, nil)
	if len(fn) != len(fc) {
		t.Fatalf("flood reach: network %d, channel %d", len(fn), len(fc))
	}
	for id := range fn {
		if !fc[id] {
			t.Fatalf("flood reach sets differ at node %d", id)
		}
	}
	if a, b := net.Counter().Get("f"), ct.Counter().Get("f"); a != b {
		t.Errorf("flood charge: network %d, channel %d", a, b)
	}

	accept := func(id NodeID) bool { return id == 150 }
	wn := net.SelectiveWalk("w", 3, 400, accept)
	wc := ct.SelectiveWalk("w", 3, 400, accept)
	if wn.Found != wc.Found || wn.Messages != wc.Messages {
		t.Errorf("selective walk: network (%d, %d msgs), channel (%d, %d msgs)",
			wn.Found, wn.Messages, wc.Found, wc.Messages)
	}
	if len(wn.Path) != len(wc.Path) {
		t.Errorf("walk paths differ: %d vs %d nodes", len(wn.Path), len(wc.Path))
	}

	dn := net.HopsWithin(0, 4)
	dc := ct.HopsWithin(0, 4)
	if len(dn) != len(dc) {
		t.Errorf("HopsWithin: network %d nodes, channel %d", len(dn), len(dc))
	}
}

func TestChannelTransportCloseDrains(t *testing.T) {
	g := testGraph(t, 16, 6)
	ct := NewChannelTransport(g, 6, DefaultChannelConfig())
	var mu sync.Mutex
	n := 0
	ct.SetHandler(1, func(msg *Message) { mu.Lock(); n++; mu.Unlock() })
	for i := 0; i < 10; i++ {
		ct.SendNew("x", 0, 1, 0, nil)
	}
	ct.Close()
	ct.Close() // idempotent
	mu.Lock()
	defer mu.Unlock()
	if n != 10 {
		t.Fatalf("Close drained %d/10 messages", n)
	}
}
