package p2p

import (
	"sort"
	"testing"
	"time"

	"p2psum/internal/topology"
)

// The per-peer flow-control suite: PeerStats counters after real traffic,
// the address ordering contract, and the keepalive ping/pong RTT probe.

// singleDialPair builds two one-node transports where only a dials, so the
// pair shares a single socket: a registers the conn it dialed, b registers
// the inbound side of the same conn — which makes both directions of the
// flow counters visible from both processes.
func singleDialPair(t *testing.T, cfg TCPConfig) (a, b *TCPTransport) {
	t.Helper()
	g := topology.NewGraph(2)
	if err := g.AddEdge(0, 1, 0.01); err != nil {
		t.Fatal(err)
	}
	cfg.Listen = "127.0.0.1:0"
	cfg.Local = []NodeID{0}
	a, err := NewTCPTransport(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	cfg.Local = []NodeID{1}
	b, err = NewTCPTransport(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	if err := a.SetHosts(map[NodeID]string{1: b.ListenAddr()}); err != nil {
		t.Fatal(err)
	}
	if err := b.SetHosts(map[NodeID]string{0: a.ListenAddr()}); err != nil {
		t.Fatal(err)
	}
	if err := a.DialPeers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestTCPPeerStatsFlowCounters: after a burst of data frames and a Settle,
// the sender's snapshot shows the traffic (units, bytes, at least one
// coalesced flush covering several units) and the receiver's mirror shows
// the same flow from the other side; Settle's status exchange drains the
// in-flight estimate back to zero.
func TestTCPPeerStatsFlowCounters(t *testing.T) {
	a, b := singleDialPair(t, TCPConfig{})
	b.SetHandler(1, func(*Message) {})
	const burst = 40
	for i := 0; i < burst; i++ {
		a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: int64(i), Text: "flow"})
	}
	a.Settle()

	stats := a.PeerStats()
	if len(stats) != 1 {
		t.Fatalf("sender has %d peer stats, want 1", len(stats))
	}
	st := stats[0]
	if st.Addr != b.ListenAddr() {
		t.Errorf("stat addr %q, want the peer's listen addr %q", st.Addr, b.ListenAddr())
	}
	if st.SentUnits < burst {
		t.Errorf("sent %d units, want >= %d data frames", st.SentUnits, burst)
	}
	if st.SentBytes <= 0 || st.RecvBytes <= 0 {
		t.Errorf("byte counters sent=%d recv=%d, want both positive", st.SentBytes, st.RecvBytes)
	}
	if st.Flushes < 1 || st.Flushes > st.SentUnits {
		t.Errorf("%d flushes for %d units: coalescing batches must use [1, units] writes", st.Flushes, st.SentUnits)
	}
	if st.QueuedUnits != 0 || st.QueuedBytes != 0 {
		t.Errorf("settled link still queues %d units / %d bytes", st.QueuedUnits, st.QueuedBytes)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after Settle's status exchange, want 0", st.InFlight)
	}

	peer := b.PeerStats()
	if len(peer) != 1 {
		t.Fatalf("receiver has %d peer stats, want 1", len(peer))
	}
	if peer[0].RecvUnits < burst {
		t.Errorf("receiver saw %d units, want >= %d", peer[0].RecvUnits, burst)
	}
	if peer[0].RecvBytes <= 0 {
		t.Errorf("receiver byte counter %d, want positive", peer[0].RecvBytes)
	}
}

// TestTCPPeerStatsOrdered: a process connected to two peers reports one
// snapshot per connection, ordered by peer address — the stable layout the
// p2pnode stats dump relies on.
func TestTCPPeerStatsOrdered(t *testing.T) {
	g := topology.NewGraph(3)
	for i := 0; i+1 < 3; i++ {
		if err := g.AddEdge(i, i+1, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	procs := make([]*TCPTransport, 3)
	for i := range procs {
		tr, err := NewTCPTransport(g, TCPConfig{Listen: "127.0.0.1:0", Local: []NodeID{NodeID(i)}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(tr.Close)
		procs[i] = tr
	}
	for i, tr := range procs {
		hosts := make(map[NodeID]string)
		for j, other := range procs {
			if j != i {
				hosts[NodeID(j)] = other.ListenAddr()
			}
		}
		if err := tr.SetHosts(hosts); err != nil {
			t.Fatal(err)
		}
	}
	if err := procs[0].DialPeers(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	stats := procs[0].PeerStats()
	if len(stats) != 2 {
		t.Fatalf("hub has %d peer stats, want one per connection (2)", len(stats))
	}
	if !sort.SliceIsSorted(stats, func(i, j int) bool { return stats[i].Addr < stats[j].Addr }) {
		t.Errorf("peer stats not ordered by address: %q, %q", stats[0].Addr, stats[1].Addr)
	}
	want := map[string]bool{procs[1].ListenAddr(): true, procs[2].ListenAddr(): true}
	for _, st := range stats {
		if !want[st.Addr] {
			t.Errorf("unexpected peer address %q in stats", st.Addr)
		}
	}
}

// TestTCPKeepAliveRTT: on an idle link the keepalive loop sends a ping,
// the pong comes back, and the measured round trip lands in PeerStats —
// without the probe tearing down the healthy connection.
func TestTCPKeepAliveRTT(t *testing.T) {
	const interval = 40 * time.Millisecond
	a, _ := singleDialPair(t, TCPConfig{KeepAlive: interval})

	deadline := time.Now().Add(5 * time.Second)
	for {
		stats := a.PeerStats()
		if len(stats) == 1 && stats[0].RTT > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no keepalive RTT after 5s; stats: %+v", stats)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Several keepalive periods later the probed link must still be up:
	// answered pings never trip the 2×KeepAlive teardown.
	time.Sleep(4 * interval)
	if stats := a.PeerStats(); len(stats) != 1 {
		t.Fatalf("keepalive tore down a healthy connection: %d stats", len(stats))
	}
}
