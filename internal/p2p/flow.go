package p2p

import (
	"math"
	"sync"
	"time"
)

// flowRate is an exponentially-weighted moving rate meter (bytes per
// second) in the style of the per-connection flow monitors of
// production p2p stacks: traffic accumulates into a short sample window,
// and each completed window folds into the estimate with a weight that
// grows with the window's length, so the estimate has a fixed half-life
// in real time regardless of how bursty the traffic is. An idle meter
// decays toward zero as soon as it is read.
type flowRate struct {
	mu    sync.Mutex
	start time.Time // current sample window start (zero until first add)
	acc   int64     // bytes accumulated in the current window
	rate  float64   // bytes/sec estimate
	total int64     // lifetime bytes
}

// flowHalfLife is the estimate's half-life in seconds: after this much
// time at a new steady rate, the estimate has moved half-way there.
const flowHalfLife = 2.0

// flowWindow is the minimum sample window: adds closer together than this
// accumulate instead of folding, keeping the estimate stable under bursts.
const flowWindow = 100 * time.Millisecond

// add records n bytes now.
func (f *flowRate) add(n int64) {
	f.mu.Lock()
	now := time.Now()
	if f.start.IsZero() {
		f.start = now
	}
	f.tick(now)
	f.acc += n
	f.total += n
	f.mu.Unlock()
}

// tick folds a completed sample window into the estimate. Caller holds mu.
func (f *flowRate) tick(now time.Time) {
	elapsed := now.Sub(f.start)
	if elapsed < flowWindow {
		return
	}
	dt := elapsed.Seconds()
	inst := float64(f.acc) / dt
	w := 1 - math.Exp2(-dt/flowHalfLife)
	f.rate += w * (inst - f.rate)
	f.acc = 0
	f.start = now
}

// snapshot returns the current rate estimate and the lifetime byte total.
func (f *flowRate) snapshot() (rate float64, total int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.start.IsZero() {
		f.tick(time.Now())
	}
	return f.rate, f.total
}
