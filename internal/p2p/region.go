package p2p

import (
	"math"
	"math/rand"
	"sync"

	"p2psum/internal/liveness"
	"p2psum/internal/sim"
	"p2psum/internal/stats"
	"p2psum/internal/topology"
)

// Sharded (parallel) mode of the discrete-event Network: the node set is
// partitioned into regions, each owning one sim.Engine advanced in
// conservative lockstep windows by a sim.Sharded kernel (see the package
// comment there for the time model). The Network routes every schedule —
// message delivery, After timers — to the owning region and keeps
// per-region message/byte books merged on read, the same
// sharded-bookkeeping pattern the channel transport uses for its
// dispatch groups.
//
// Region assignment rides the existing dispatch-group machinery:
// internal/core calls SetGroupBy at AssignSummaryPeers time (before any
// traffic) with the domain→group partition from topology.NearestSeeds,
// and the Network derives the lookahead as the minimum latency of any
// edge crossing regions (capped by DirectLatency, since any node pair
// may exchange direct messages).
//
// Determinism contract: a sharded run is bit-identical to the sequential
// engine as long as cross-region interactions are limited to message
// sends (the conservative windows order those deterministically).
// Synchronous cross-region effects — a walk reading another region's
// liveness state mid-churn, or a dropped cross-region message mutating
// the sender via the drop callback — execute under the receiving
// region's clock and are only deterministic when the partition keeps the
// interacting nodes in one region (true for domain-aligned partitions,
// which NearestSeeds produces). Periodic gossip is rejected on this
// transport exactly as in sequential mode.

// regionBook is one region's private message/byte ledger. The owning
// region's worker is effectively the only writer during a window (a
// node's sends charge the sender's region), but the mutex also covers
// the rare cross-region writers — drop callbacks acting for a remote
// sender — and the merged Counter()/Bytes() reads.
type regionBook struct {
	mu      sync.Mutex
	counter *stats.Counter
	bytes   *stats.Counter
	nextMsg uint64
	// Commit-buffer for the kernel's optimistic speculation (BookState):
	// Snapshot clones the live ledgers here, Rollback swaps them back,
	// Commit discards them. nil outside an optimistic window.
	snapCounter *stats.Counter
	snapBytes   *stats.Counter
	snapNextMsg uint64
}

// NewShardedNetwork builds a Network whose events execute on a sharded
// kernel with the given region count. All nodes start in region 0 (fully
// sequential) until SetGroupBy installs a partition; regions must be
// >= 1, and NewShardedNetwork(g, seed, 1) behaves bit-identically to
// NewNetwork.
func NewShardedNetwork(graph *topology.Graph, seed int64, regions int) (*Network, error) {
	shard, err := sim.NewSharded(graph.Len(), regions)
	if err != nil {
		return nil, err
	}
	n := &Network{
		graph:         graph,
		rng:           rand.New(rand.NewSource(seed)),
		view:          liveness.NewView(graph.Len(), nil),
		handler:       make([]Handler, graph.Len()),
		DirectLatency: 0.100,
		shard:         shard,
		books:         make([]regionBook, regions),
	}
	for i := range n.books {
		n.books[i].counter = stats.NewCounter()
		n.books[i].bytes = stats.NewCounter()
	}
	return n, nil
}

// Sharded returns the parallel kernel, or nil on a sequential Network.
func (n *Network) Sharded() *sim.Sharded { return n.shard }

// DispatchGroups returns the region count (1 on a sequential Network),
// satisfying DispatchGrouper so core's domain→group wiring reaches the
// sharded kernel through the same call it uses for the channel
// transport's dispatcher groups.
func (n *Network) DispatchGroups() int {
	if n.shard == nil {
		return 1
	}
	return n.shard.Regions()
}

// SetGroupBy installs the node→region partition (reduced modulo the
// region count) and derives the conservative lookahead from it. It
// reports whether the mapping was applied: the sequential Network and a
// kernel that has already scheduled events keep their mapping and
// return false.
func (n *Network) SetGroupBy(fn func(NodeID) int) bool {
	if n.shard == nil {
		return false
	}
	d := n.shard.Regions()
	part := make([]int, n.graph.Len())
	for i := range part {
		g := fn(NodeID(i)) % d
		if g < 0 {
			g += d
		}
		part[i] = g
	}
	if n.shard.SetPartition(part, n.lookaheadFor(part)) != nil {
		return false
	}
	// Tighten the kernel's per-region earliest-output/earliest-input
	// bounds from the topology: a region whose cheapest crossing is dear
	// lets its neighbors stride further than the global lookahead. Capped
	// by DirectLatency for the same reason the lookahead is.
	gOut, gIn := topology.RegionLatencyBounds(n.graph, part, d)
	out := make([]sim.Time, d)
	in := make([]sim.Time, d)
	for r := 0; r < d; r++ {
		out[r] = sim.Time(math.Min(gOut[r], n.DirectLatency))
		in[r] = sim.Time(math.Min(gIn[r], n.DirectLatency))
	}
	if err := n.shard.SetBounds(out, in); err != nil {
		panic(err) // bounds are positive and sized by construction
	}
	return true
}

// SetWindowMode selects the sharded kernel's window-bound scheme (fixed
// conservative lookahead vs per-region dynamic bounds); a no-op on a
// sequential Network. Configure it before traffic starts.
func (n *Network) SetWindowMode(m sim.WindowMode) {
	if n.shard != nil {
		n.shard.SetWindowMode(m)
	}
}

// SetSpeculation enables frontier-proven speculative overrun on the
// sharded kernel: regions keep executing past their committed window
// while they can prove no cross-region event can land below their
// clock. The protocol stack's summary state cannot rewind, so this
// never enables the kernel's optimistic (journaled) tier — results stay
// bit-identical to the sequential engine by construction. A no-op on a
// sequential Network or with on == false; configure before traffic.
func (n *Network) SetSpeculation(on bool) {
	if n.shard != nil && on {
		n.shard.Speculate(sim.SpecOptions{})
	}
}

// KernelStats returns the sharded kernel's window/speculation counters
// and whether this Network runs a sharded kernel at all.
func (n *Network) KernelStats() (sim.ShardedStats, bool) {
	if n.shard == nil {
		return sim.ShardedStats{}, false
	}
	return n.shard.Stats(), true
}

// BookState adapts the per-region traffic ledgers to sim.RegionState so
// a kernel-level driver whose own state can rewind may run optimistic
// speculation with the books staying consistent: message counts, byte
// tallies and the region's message-id counter all roll back with the
// journal, so replayed sends are charged once and re-assigned the same
// ids. The full protocol stack does NOT install this (core's summary
// state is not rewindable); it exists for tests and rewindable clients
// driving the Network directly.
func (n *Network) BookState() sim.RegionState { return bookState{n} }

type bookState struct{ n *Network }

// Snapshot clones region r's ledgers into the commit-buffer.
func (b bookState) Snapshot(r int) {
	bk := &b.n.books[r]
	bk.mu.Lock()
	bk.snapCounter = bk.counter.Clone()
	bk.snapBytes = bk.bytes.Clone()
	bk.snapNextMsg = bk.nextMsg
	bk.mu.Unlock()
}

// Rollback restores region r's ledgers from the commit-buffer.
func (b bookState) Rollback(r int) {
	bk := &b.n.books[r]
	bk.mu.Lock()
	bk.counter, bk.bytes, bk.nextMsg = bk.snapCounter, bk.snapBytes, bk.snapNextMsg
	bk.snapCounter, bk.snapBytes = nil, nil
	bk.mu.Unlock()
}

// Commit discards region r's commit-buffer; the live ledgers stand.
func (b bookState) Commit(r int) {
	bk := &b.n.books[r]
	bk.mu.Lock()
	bk.snapCounter, bk.snapBytes = nil, nil
	bk.mu.Unlock()
}

// lookaheadFor computes the conservative window width for a partition:
// the minimum latency of any edge whose endpoints land in different
// regions, capped by DirectLatency (off-graph sends use it, and any
// node pair may exchange one).
func (n *Network) lookaheadFor(part []int) sim.Time {
	min := n.DirectLatency
	for u := 0; u < n.graph.Len(); u++ {
		pu := part[u]
		adj := n.graph.Neighbors(u)
		for i, v := range adj {
			if part[v] != pu {
				if l := n.graph.LatencyAt(u, i); l < min {
					min = l
				}
			}
		}
	}
	return sim.Time(min)
}

// book returns the ledger charged for traffic originating at src.
func (n *Network) book(src NodeID) *regionBook {
	return &n.books[n.shard.RegionOf(int(src))]
}

// sendSharded is Send's parallel-kernel path: charge the sender's
// region book, then route the delivery to the destination's region
// (directly onto its heap when src and dst share a region, staged at
// the next window barrier otherwise).
func (n *Network) sendSharded(msg *Message) {
	src := n.shard.RegionOf(int(msg.From))
	b := &n.books[src]
	size := messageWireSize(msg)
	b.mu.Lock()
	b.nextMsg++
	if msg.ID == 0 {
		// Region-striped ids: unique across regions without global state.
		msg.ID = b.nextMsg*uint64(len(n.books)) + uint64(src) + 1
	}
	b.counter.Inc(msg.Type)
	b.bytes.Add(msg.Type, size)
	b.mu.Unlock()
	lat := n.latencyBetween(msg.From, msg.To)
	at := n.shard.RegionNow(src) + sim.Time(lat)
	n.shard.Schedule(int(msg.From), int(msg.To), at, func() { n.deliver(msg) })
}

// regionLink charges flood/walk transmissions to the originating
// region's book while traversing the shared overlay view.
type regionLink struct {
	n    *Network
	book *regionBook
}

func (l regionLink) Neighbors(id NodeID) []NodeID { return l.n.Neighbors(id) }

func (l regionLink) charge(typ string, k int64) {
	l.book.mu.Lock()
	l.book.counter.Add(typ, k)
	l.book.bytes.Add(typ, k*BaseMessageBytes)
	l.book.mu.Unlock()
}

// linkFor returns the metering view for a traversal originating at src:
// the Network itself in sequential mode, the origin's region ledger in
// sharded mode.
func (n *Network) linkFor(src NodeID) linkView {
	if n.books == nil {
		return n
	}
	return regionLink{n: n, book: n.book(src)}
}

// mergedBooks folds the per-region ledgers into one snapshot.
func mergedBooks(books []regionBook, pick func(*regionBook) *stats.Counter) *stats.Counter {
	out := stats.NewCounter()
	for i := range books {
		b := &books[i]
		b.mu.Lock()
		out.Merge(pick(b))
		b.mu.Unlock()
	}
	return out
}
