package p2p

import (
	"fmt"
	"sync/atomic"

	"p2psum/internal/liveness"
	"p2psum/internal/stats"
	"p2psum/internal/topology"
	"p2psum/internal/wire"
)

// Transport is the overlay substrate the protocol stack (internal/core,
// internal/routing) runs on: it moves messages between nodes, walks and
// floods the overlay, and meters every transmission. The protocol layers
// depend only on this interface, never on a concrete implementation.
//
// Two implementations ship with the package:
//
//   - Network runs over the deterministic discrete-event engine of
//     internal/sim — the stand-in for the paper's SimJava setup (§6.2.1).
//     Runs are reproducible bit-for-bit given a seed.
//
//   - ChannelTransport runs concurrently on goroutines in real time, with
//     per-link latencies and optional packet loss. It expresses scenarios
//     the discrete-event engine cannot (wall-clock interleavings, lossy
//     links) at the price of determinism.
type Transport interface {
	// Len returns the number of overlay nodes.
	Len() int
	// Neighbors returns the online neighbors of a node, in ascending id
	// order (the graph's adjacency order is already deterministic).
	Neighbors(id NodeID) []NodeID
	// Degree returns the node's static overlay degree (online or not),
	// the selection criterion of the §4.1 selective walk and of the
	// degree-based summary-peer election.
	Degree(id NodeID) int
	// HopsWithin returns BFS hop distances from src over the static
	// topology, bounded by radius (nodes farther than radius are absent).
	HopsWithin(src NodeID, radius int) map[NodeID]int

	// Liveness exposes the transport's membership view — the single truth
	// behind Online/SetOnline. In-memory transports hold one ground-truth
	// view for the whole overlay; a TCP process's view is authoritative for
	// its local nodes and converges on the rest through the protocol
	// layer's liveness gossip. The view's observer (liveness.SetObserver)
	// is the transport-level liveness hook.
	Liveness() *liveness.View
	// Online reports whether the node is believed connected (liveness
	// state Alive; suspects count as offline).
	Online(id NodeID) bool
	// SetOnline flips a node's connectivity in the liveness view: up marks
	// it alive at the next incarnation, down marks it dead.
	SetOnline(id NodeID, up bool)
	// OnlineCount returns the number of connected nodes.
	OnlineCount() int
	// OnlineIDs returns the sorted ids of online nodes.
	OnlineIDs() []NodeID

	// SetHandler installs the message handler of a node.
	SetHandler(id NodeID, h Handler)
	// SetDrop installs the callback invoked whenever a message addressed
	// to an offline or handler-less node is discarded; protocols use it to
	// detect failures (§4.3).
	SetDrop(fn func(*Message))
	// Send delivers msg to msg.To after the link latency, counting it
	// under msg.Type. Messages to offline nodes are counted as sent (the
	// bytes hit the wire) but trigger the drop callback instead.
	Send(msg *Message)
	// SendNew builds and sends a message.
	SendNew(typ string, from, to NodeID, ttl int, payload any)
	// Flood delivers a message of the given type from src to every node
	// within ttl hops using Gnutella-style constrained broadcast,
	// returning the nodes reached and counting every transmission.
	Flood(typ string, src NodeID, ttl int, payload any, visit func(NodeID)) map[NodeID]bool
	// SelectiveWalk performs the paper's find-protocol walk (§4.1, after
	// Adamic et al. [23]): highest-degree unvisited online neighbor first.
	SelectiveWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult
	// RandomWalk is the blind baseline: uniform random unvisited neighbor.
	RandomWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult

	// Counter exposes the per-type message counters — the unit of every
	// cost figure in the paper. Transports with sharded bookkeeping
	// return a merged snapshot per call; read it again for fresh totals.
	Counter() *stats.Counter
	// Bytes exposes the per-type traffic volume counters (same snapshot
	// contract as Counter). A message whose payload is serializable — nil,
	// or carrying a registered wire codec — is charged its real encoded
	// frame length; the Sizer estimate is the fallback.
	Bytes() *stats.Counter

	// Exec runs fn serialized with message handlers and returns when fn
	// has run. Protocol drivers wrap state mutations in it so they never
	// race with handler-side mutation: on the single-threaded event
	// engine it is a direct call; on the channel transport fn runs with
	// every dispatch group quiesced (on the dispatcher goroutine itself
	// in single-group mode, behind a barrier parking all dispatchers
	// otherwise). fn must not call Exec or Settle (it would deadlock the
	// dispatcher; the channel transport panics on the detectable cases).
	Exec(fn func())
	// After schedules fn to run once, delaySeconds of virtual time from
	// now, serialized with the message handlers of owner's dispatch group
	// like a delivery (on the channel transport virtual seconds are
	// scaled like link latencies and elapse in real time; on the event
	// engine the timer is a regular event, so Settle's run-to-quiescence
	// executes it as virtual time advances). owner names the node whose
	// protocol state fn mutates — timers must be serialized with that
	// node's handlers, and on a sharded-dispatch transport that means
	// running in its group. Protocols use After for loss-recovery
	// timeouts (e.g. retransmitting a lost §4.2.2 reconciliation token).
	// On the channel transport a pending timer does not count as an
	// in-flight message — Settle does not wait for it — and Close cancels
	// timers that have not fired. fn must not call Exec or Settle.
	After(owner NodeID, delaySeconds float64, fn func())
	// Settle blocks until every in-flight message (and everything sent
	// while delivering it) has been handled. Protocol drivers call it to
	// reach quiescence before reading protocol state.
	Settle()

	// SetLinkFilter installs (or, with nil, removes) the partition hook:
	// a message whose directed link the filter reports severed is counted
	// as sent (the bytes hit the wire) but never delivered — it surfaces
	// through the drop callback exactly like a send to an offline node, so
	// protocols observe a partition as the §4.3 failure evidence it is.
	// Neighbors, walks and floods respect the filter too (a severed link
	// is not traversable). The fault-scenario engine (internal/scenario)
	// scripts partitions by swapping immutable filter closures in and out;
	// on a TCP deployment every process installs the same scripted filter,
	// so both sides of a cut degrade symmetrically without touching
	// sockets or iptables. Installation is atomic and safe at any time.
	SetLinkFilter(fn LinkFilter)
}

// LinkFilter reports whether the directed link from → to is currently
// severed. Implementations must be pure reads of immutable state (the
// hook runs on every delivery and neighbor scan, possibly from many
// goroutines); to change a partition, build a new closure and install it
// with SetLinkFilter.
type LinkFilter func(from, to NodeID) bool

// linkGate is the shared atomic holder for a transport's installed
// LinkFilter. The zero value is an open gate (no filter, no overhead
// beyond one atomic load).
type linkGate struct {
	fn atomic.Pointer[LinkFilter]
}

// set installs fn (nil removes the filter).
func (g *linkGate) set(fn LinkFilter) {
	if fn == nil {
		g.fn.Store(nil)
		return
	}
	g.fn.Store(&fn)
}

// severed reports whether the installed filter cuts from → to.
func (g *linkGate) severed(from, to NodeID) bool {
	p := g.fn.Load()
	return p != nil && (*p)(from, to)
}

// OriginScheduler is the optional interface of transports whose After
// needs to know the calling context. Transport.After(owner, ...) assumes
// it is invoked from owner's own serialized context (or from the idle
// driver); a handler or timer of node A scheduling work for node B's
// group breaks that assumption on a region-sharded kernel, where it
// would push onto another region's live heap. AfterFrom names the
// origin: the node whose serialized context the caller is executing in
// (the message's sender for a handler, the timer's owner for a timer).
// The sharded Network stages cross-region work at the next window
// barrier, exactly like a cross-region message from origin; transports
// whose After is already safe from any goroutine simply do not implement
// the interface, and callers fall back to After.
type OriginScheduler interface {
	AfterFrom(origin, owner NodeID, delaySeconds float64, fn func())
}

// DispatchGrouper is the optional interface of transports that shard
// handler dispatch into concurrently running groups (ChannelTransport with
// ChannelConfig.Dispatchers > 1). Protocol wiring uses it to align dispatch
// groups with protocol regions — internal/core maps every domain onto one
// group (via topology.NearestSeeds over Graph), so independent domains
// reconcile and answer queries in parallel while each domain's handlers
// stay serialized.
type DispatchGrouper interface {
	// DispatchGroups returns the number of dispatch groups (>= 1).
	DispatchGroups() int
	// SetGroupBy replaces the node -> group mapping (reduced modulo
	// DispatchGroups). It reports whether the mapping was applied: a
	// transport that has already carried traffic keeps its mapping and
	// returns false, which is safe — any mapping preserves per-node
	// serialization; the choice only affects parallelism.
	SetGroupBy(fn func(NodeID) int) bool
	// Graph exposes the overlay topology the grouping is computed from.
	Graph() *topology.Graph
}

// Localizer is the optional interface of transports that host only a
// subset of the overlay in this process (TCPTransport). Driver-side
// protocol code consults it to act only for the nodes it owns — e.g.
// core.Construct broadcasts only from local summary peers, so two
// processes calling Construct concurrently each drive their own half of
// the domain. In-memory transports host every node and do not implement
// it.
type Localizer interface {
	// IsLocal reports whether the node's handlers run in this process.
	IsLocal(id NodeID) bool
}

// IsLocal reports whether the node is hosted in this process on the given
// transport: true for every node of an in-memory transport, the
// Localizer's answer otherwise.
func IsLocal(t Transport, id NodeID) bool {
	if l, ok := t.(Localizer); ok {
		return l.IsLocal(id)
	}
	return true
}

// Compile-time conformance of the implementations.
var (
	_ Transport       = (*Network)(nil)
	_ Transport       = (*ChannelTransport)(nil)
	_ Transport       = (*TCPTransport)(nil)
	_ DispatchGrouper = (*Network)(nil)
	_ DispatchGrouper = (*ChannelTransport)(nil)
	_ DispatchGrouper = (*TCPTransport)(nil)
	_ Localizer       = (*TCPTransport)(nil)
	_ OriginScheduler = (*Network)(nil)
)

// frameOf builds the frame header for msg.
func frameOf(msg *Message, hasPayload bool) wire.Frame {
	return wire.Frame{
		Type:       msg.Type,
		From:       int64(msg.From),
		To:         int64(msg.To),
		TTL:        msg.TTL,
		Hops:       msg.Hops,
		HasPayload: hasPayload,
	}
}

// encodeFrame serializes msg into a wire frame when its payload is
// serializable: messages without a payload frame directly, and payloads
// whose message type has a registered wire codec are encoded through it.
// It reports false for payloads the codec registry cannot serialize — the
// caller falls back to shared-memory delivery and Sizer accounting.
func encodeFrame(msg *Message) ([]byte, bool) {
	e := wire.GetEnc()
	defer e.Release()
	if !appendFrame(e, msg) {
		return nil, false
	}
	return append([]byte(nil), e.Bytes()...), true
}

// appendFrame appends msg's full frame encoding to e (codec payload
// included) with no intermediate buffer: the payload codec runs once
// against a pooled counting Enc to learn the length prefix, then once
// against e itself. It reports false — leaving e exactly as it was — when
// the payload has no registered codec or the codec fails.
func appendFrame(e *wire.Enc, msg *Message) bool {
	has := msg.Payload != nil
	var c wire.PayloadCodec
	payloadLen := 0
	if has {
		var ok bool
		c, ok = wire.Lookup(msg.Type)
		if !ok {
			return false
		}
		ce := wire.GetCountEnc()
		err := c.Encode(ce, msg.Payload)
		payloadLen = ce.Len()
		ce.Release()
		if err != nil {
			return false
		}
	}
	f := frameOf(msg, has)
	start := e.Len()
	f.AppendHeaderTo(e, payloadLen)
	if has {
		payloadStart := e.Len()
		if err := c.Encode(e, msg.Payload); err != nil {
			e.Truncate(start)
			return false
		}
		if e.Len()-payloadStart != payloadLen {
			// The codec is non-deterministic: the counted and written
			// lengths disagree, so the frame on the wire is corrupt. This
			// is a wiring bug in the codec, not a runtime condition.
			panic(fmt.Sprintf("p2p: codec for %q wrote %d bytes, counted %d",
				msg.Type, e.Len()-payloadStart, payloadLen))
		}
	}
	return true
}

// frameSize measures the encoded frame length of msg without building the
// bytes (pooled counting Enc all the way down, no allocation). It must
// agree exactly with len(encodeFrame(msg)) — TestByteAccounting pins that.
func frameSize(msg *Message) (int64, bool) {
	has := msg.Payload != nil
	payloadLen := 0
	if has {
		c, ok := wire.Lookup(msg.Type)
		if !ok {
			return 0, false
		}
		ce := wire.GetCountEnc()
		err := c.Encode(ce, msg.Payload)
		payloadLen = ce.Len()
		ce.Release()
		if err != nil {
			return 0, false
		}
	}
	f := frameOf(msg, has)
	return int64(f.SizeWithPayload(payloadLen)), true
}

// decodeFrame reconstructs a Message from a wire frame, decoding the
// payload through the registered codec. Frames without a payload need no
// codec.
func decodeFrame(b []byte) (*Message, error) {
	return decodeFrameWith(b, wire.DecodeFrame)
}

// decodeFrameShared is decodeFrame over a borrowed buffer: the frame-level
// payload blob aliases b instead of being copied, and the type string is
// interned through the registry. Safe because the payload codec consumes
// the blob before this function returns and must not retain it (the
// PayloadCodec contract) — so the caller may reuse b immediately.
func decodeFrameShared(b []byte) (*Message, error) {
	return decodeFrameWith(b, wire.DecodeFrameShared)
}

func decodeFrameWith(b []byte, parse func([]byte) (*wire.Frame, error)) (*Message, error) {
	f, err := parse(b)
	if err != nil {
		return nil, err
	}
	msg := &Message{
		Type: f.Type,
		From: NodeID(f.From),
		To:   NodeID(f.To),
		TTL:  f.TTL,
		Hops: f.Hops,
	}
	if f.HasPayload {
		c, ok := wire.Lookup(f.Type)
		if !ok {
			return nil, fmt.Errorf("p2p: no codec registered for message type %q", f.Type)
		}
		payload, err := c.Decode(f.Payload)
		if err != nil {
			return nil, fmt.Errorf("p2p: decode %q payload: %w", f.Type, err)
		}
		msg.Payload = payload
	}
	return msg, nil
}

// messageWireSize returns the byte size a transport charges for msg: the
// real encoded frame length when the payload is serializable (making the
// paper's cost figures byte-accurate and identical across transports), the
// BaseMessageBytes + Sizer estimate otherwise. The measurement runs the
// codec against a counting Enc — one allocation-free tree walk for
// data-level payloads, the same asymptotics as the old Sizer's NodeCount()
// walk; protocol-level payloads cost a few header bytes to count.
func messageWireSize(msg *Message) int64 {
	if size, ok := frameSize(msg); ok {
		return size
	}
	size := BaseMessageBytes
	if s, ok := msg.Payload.(Sizer); ok {
		size += s.WireSize()
	}
	return int64(size)
}

// linkView is the minimal overlay view the shared walk and flood
// traversals need: neighbor lookup plus a metered charge per transmission.
// Both transports implement it, so the §4.1/§6.2.3 traversal semantics are
// identical by construction.
type linkView interface {
	Neighbors(id NodeID) []NodeID
	// charge accounts n payload-less transmissions of the given type.
	charge(typ string, n int64)
}

// runFlood is the Gnutella-style constrained broadcast shared by both
// transports: each node forwards to all its neighbors except the sender,
// and duplicate deliveries (cycles) are transmitted but not re-forwarded.
// This is the paper's "pure flooding algorithm" cost behaviour (§6.2.3).
func runFlood(v linkView, typ string, src NodeID, ttl int, visit func(NodeID)) map[NodeID]bool {
	type hop struct {
		node NodeID
		from NodeID
		ttl  int
	}
	reached := map[NodeID]bool{src: true}
	if visit != nil {
		visit(src)
	}
	queue := []hop{{node: src, from: src, ttl: ttl}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.ttl == 0 {
			continue
		}
		for _, nb := range v.Neighbors(h.node) {
			if nb == h.from {
				continue
			}
			v.charge(typ, 1) // transmission on the wire
			if reached[nb] {
				continue // duplicate: received, dropped, not re-forwarded
			}
			reached[nb] = true
			if visit != nil {
				visit(nb)
			}
			queue = append(queue, hop{node: nb, from: h.node, ttl: h.ttl - 1})
		}
	}
	return reached
}

// runWalk is the TTL-bounded walk shared by both transports: move to the
// neighbor picked by choose until accept returns true or maxHops is
// exhausted; dead ends backtrack.
func runWalk(v linkView, typ string, src NodeID, maxHops int, accept func(NodeID) bool, choose func([]NodeID) NodeID) WalkResult {
	res := WalkResult{Found: -1, Path: []NodeID{src}}
	if accept(src) {
		res.Found = src
		return res
	}
	visited := map[NodeID]bool{src: true}
	stack := []NodeID{src}
	cur := src
	for res.Messages < maxHops {
		var cands []NodeID
		for _, nb := range v.Neighbors(cur) {
			if !visited[nb] {
				cands = append(cands, nb)
			}
		}
		if len(cands) == 0 {
			// Backtrack.
			if len(stack) <= 1 {
				return res
			}
			stack = stack[:len(stack)-1]
			cur = stack[len(stack)-1]
			continue
		}
		next := choose(cands)
		visited[next] = true
		v.charge(typ, 1)
		res.Messages++
		res.Path = append(res.Path, next)
		stack = append(stack, next)
		cur = next
		if accept(cur) {
			res.Found = cur
			return res
		}
	}
	return res
}

// selectiveChoice picks the highest-degree candidate, ties breaking on the
// lower node id — the §4.1 find-protocol criterion.
func selectiveChoice(degree func(NodeID) int) func([]NodeID) NodeID {
	return func(cands []NodeID) NodeID {
		best := cands[0]
		for _, c := range cands[1:] {
			if degree(c) > degree(best) || (degree(c) == degree(best) && c < best) {
				best = c
			}
		}
		return best
	}
}
