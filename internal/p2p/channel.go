package p2p

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"p2psum/internal/liveness"
	"p2psum/internal/stats"
	"p2psum/internal/topology"
)

// ChannelConfig tunes the concurrent in-memory transport.
type ChannelConfig struct {
	// LatencyScale maps one virtual second of link latency onto real time.
	// Overlay link latencies are 0.01–0.2 virtual seconds, so the default
	// of 1ms yields 10–200µs sleeps per hop — real concurrency without
	// making protocol runs crawl. Zero delivers as fast as the scheduler
	// allows (messages still traverse goroutines and may interleave).
	LatencyScale time.Duration
	// LossRate silently drops each unicast with this probability in
	// [0,1): the message is counted as sent (the bytes hit the wire) but
	// never delivered and never reported through the drop callback —
	// genuine packet loss, unlike the offline-receiver drops protocols
	// detect via SetDrop.
	LossRate float64
	// DirectLatency (virtual seconds) is used for node pairs without an
	// overlay edge. Defaults to 0.100, matching Network.
	DirectLatency float64
	// Dispatchers is the number of dispatch groups: every node belongs to
	// exactly one group, each group has its own serialized dispatcher
	// goroutine, inbox and timer set, and distinct groups run their
	// handlers concurrently. 0 or 1 keeps the original single-dispatcher
	// layout (bit-identical behaviour to the pre-sharding transport);
	// values above the node count are clamped.
	Dispatchers int
	// GroupBy maps a node to its dispatch group (reduced modulo
	// Dispatchers). Nil partitions the id space into contiguous blocks.
	// internal/core installs a domain-based mapping via SetGroupBy before
	// construction, so independent domains land on distinct dispatchers.
	GroupBy func(NodeID) int
}

// DefaultChannelConfig returns the defaults described on ChannelConfig.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{LatencyScale: time.Millisecond, DirectLatency: 0.100}
}

// ChannelTransport is the concurrent, real-time Transport: every unicast is
// carried by its own goroutine that sleeps the scaled link latency and then
// hands the message to the dispatcher goroutine owning the destination's
// dispatch group. Each group's dispatcher runs its nodes' handlers
// sequentially, so protocol handlers (which mutate per-node protocol state)
// need no internal locking — the same contract the discrete-event Network
// gives them, narrowed from "one global serial order" to "one serial order
// per group". With Dispatchers <= 1 (the default) there is a single group
// and the transport behaves exactly like the original single-dispatcher
// implementation.
//
// Sharded dispatch exists for multi-domain scale-out: partition the nodes
// by domain (SetGroupBy) and independent domains reconcile and answer
// queries truly in parallel, while handler serialization per node — and
// therefore per domain — is preserved. Cross-group sends are routed through
// the destination group's inbox; drop callbacks are routed to the sender's
// group (they mutate sender-side protocol state, see SetDrop). The
// transport bookkeeping is sharded the same way: each group counts its own
// pending work and tallies its own message/byte counters under its own
// lock, and Counter/Bytes merge the shards into a snapshot on read — at
// high message rates groups never contend on shared accounting.
//
// Unlike Network, runs are not deterministic: wall-clock scheduling decides
// the delivery interleaving of same-window messages. Use it for scenarios
// the event engine cannot express (real elapsed time, lossy links,
// concurrent load); use Network when bit-for-bit reproducibility matters.
//
// Close must be called when the transport is no longer needed, or the
// dispatcher goroutines leak.
type ChannelTransport struct {
	graph *topology.Graph
	cfg   ChannelConfig
	eng   *dispatchEngine

	view *liveness.View

	mu      sync.Mutex // guards handler, drop, rng
	handler []Handler
	drop    func(*Message)
	rng     *rand.Rand
	nextMsg atomic.Uint64

	// gate holds the partition hook (SetLinkFilter): severed links route
	// deliveries to the drop callback and vanish from Neighbors.
	gate linkGate
}

// NewChannelTransport builds a concurrent transport over the graph. All
// nodes start online. The dispatcher goroutines (one per dispatch group)
// start immediately.
func NewChannelTransport(graph *topology.Graph, seed int64, cfg ChannelConfig) *ChannelTransport {
	if cfg.LatencyScale < 0 {
		cfg.LatencyScale = 0
	}
	if cfg.DirectLatency == 0 {
		cfg.DirectLatency = 0.100
	}
	n := graph.Len()
	t := &ChannelTransport{
		graph:   graph,
		cfg:     cfg,
		view:    liveness.NewView(n, nil),
		handler: make([]Handler, n),
		rng:     rand.New(rand.NewSource(seed)),
	}
	t.eng = newDispatchEngine(n, cfg.Dispatchers, cfg.GroupBy, t.deliver)
	t.cfg.Dispatchers = t.eng.groupCount()
	return t
}

// DispatchGroups returns the number of dispatch groups (>= 1).
func (t *ChannelTransport) DispatchGroups() int { return t.eng.groupCount() }

// GroupOf returns the dispatch group currently owning the node.
func (t *ChannelTransport) GroupOf(id NodeID) int { return t.eng.groupFor(id) }

// SetGroupBy replaces the node -> dispatch-group mapping (reduced modulo
// DispatchGroups). The mapping can only change while the transport is
// still pristine — before the first Send — because remapping a node with
// messages in flight would break its serialization guarantee; later calls
// return false and keep the current mapping. Any mapping is semantically
// valid (per-node serialization holds regardless); the choice only decides
// which nodes can run concurrently. internal/core calls this with a
// domain-based partition so independent domains get independent
// dispatchers.
func (t *ChannelTransport) SetGroupBy(fn func(NodeID) int) bool {
	if fn == nil {
		return false
	}
	if t.nextMsg.Load() != 0 {
		return false
	}
	return t.eng.remap(fn)
}

// deliver hands one work item to its destination handler, or routes the
// drop callback: callbacks mutate the *sender's* protocol state (§4.3
// failure detection), so when sender and receiver live in different groups
// the callback is forwarded to the sender's dispatcher instead of running
// here. The forward rides its own goroutine so two dispatchers can never
// deadlock on each other's full inboxes; the work item stays accounted as
// pending until the owning group has run the callback.
func (t *ChannelTransport) deliver(g int, env envelope) {
	msg := env.msg
	if env.isDrop {
		t.mu.Lock()
		drop := t.drop
		t.mu.Unlock()
		if drop != nil {
			drop(msg)
		}
		t.eng.finishPending(g)
		return
	}
	up := t.view.Online(int(msg.To)) && !t.gate.severed(msg.From, msg.To)
	t.mu.Lock()
	h := t.handler[msg.To]
	drop := t.drop
	t.mu.Unlock()
	gFrom := g
	if msg.From >= 0 && int(msg.From) < t.graph.Len() {
		gFrom = t.eng.groupFor(msg.From)
	}
	switch {
	case up && h != nil:
		h(msg)
	case drop == nil:
	case gFrom == g:
		drop(msg)
	default:
		// Transfer the pending count to the sender's group before the
		// forward, so quiescence checks never see the item unaccounted.
		t.eng.movePending(gFrom, g)
		go func() { t.eng.groups[gFrom].inbox <- envelope{msg: msg, isDrop: true} }()
		return
	}
	t.eng.finishPending(g)
}

// Exec submits fn to the dispatch layer and blocks until it has run,
// serialized against every handler: with a single group fn runs on the
// dispatcher goroutine between deliveries; with sharded dispatch every
// group is parked at a barrier and fn runs on the caller while no handler
// anywhere is executing. Driver code that mutates protocol state (leave,
// join, construction) goes through here so it never interleaves with a
// handler.
//
// Calling Exec from inside a handler, drop callback or timer callback
// would deadlock the dispatcher — the current work item can never finish
// while Exec waits for it — so that misuse panics instead. Nesting Exec
// inside an Exec'd closure still deadlocks (documented contract).
func (t *ChannelTransport) Exec(fn func()) { t.eng.exec(fn) }

// After schedules fn on the dispatcher of owner's group, delaySeconds of
// virtual time from now (scaled by LatencyScale like link latencies; with
// LatencyScale 0 — deliver-as-fast-as-possible mode — timers fall back to
// the default 1ms/virtual-second scale so a timeout still fires after, not
// before, the messages it guards). fn is serialized with the handlers of
// owner's group, which is what protocol timers need: they mutate the
// arming node's state. A pending timer does not count as in-flight —
// Settle does not wait for it — but once the real-time delay elapses, fn
// runs on the owning dispatcher and a concurrent Settle blocks until it
// has run. Close cancels every armed timer; timers that already fired
// observe the closed transport and are dropped.
func (t *ChannelTransport) After(owner NodeID, delaySeconds float64, fn func()) {
	scale := t.cfg.LatencyScale
	if scale <= 0 {
		scale = time.Millisecond
	}
	t.eng.after(owner, time.Duration(delaySeconds*float64(scale)), fn)
}

// Close shuts every dispatcher down after draining in-flight messages and
// fired timers, and cancels timers that have not fired yet — an idle group
// holds no in-flight work, so its armed timers would otherwise linger in
// the runtime until they fire just to observe the closed flag. The drain
// verification and the shutdown happen under the engine lock, so a timer
// firing concurrently either lands before its inbox closes (pending was
// incremented first) or observes closed and drops. Sending on a closed
// transport panics.
func (t *ChannelTransport) Close() { t.eng.closeEngine() }

// Graph returns the overlay topology.
func (t *ChannelTransport) Graph() *topology.Graph { return t.graph }

// Len returns the number of nodes.
func (t *ChannelTransport) Len() int { return t.graph.Len() }

// Counter returns a merged snapshot of the per-group message counters.
// Each dispatch group tallies its own traffic under its own lock, so the
// snapshot is safe to take while messages fly; successive calls return
// fresh (monotonically growing) snapshots.
func (t *ChannelTransport) Counter() *stats.Counter { return t.eng.mergedCounter() }

// Bytes returns a merged snapshot of the per-group traffic volume
// counters (same contract as Counter).
func (t *ChannelTransport) Bytes() *stats.Counter { return t.eng.mergedVolume() }

// SetHandler installs the message handler of a node.
func (t *ChannelTransport) SetHandler(id NodeID, h Handler) {
	t.mu.Lock()
	t.handler[id] = h
	t.mu.Unlock()
}

// SetDrop installs the drop callback (§4.3 failure detection). The
// callback runs serialized with the handlers of the dispatch group of the
// *sender* (msg.From): failure detection mutates sender-side protocol
// state, so that is the serialization it needs. With a single group this
// is indistinguishable from the old "serialized with all handlers"
// contract.
func (t *ChannelTransport) SetDrop(fn func(*Message)) {
	t.mu.Lock()
	t.drop = fn
	t.mu.Unlock()
}

// Liveness returns the transport's membership view — the ground truth of
// the whole overlay on this in-memory transport.
func (t *ChannelTransport) Liveness() *liveness.View { return t.view }

// Online reports whether the node is currently connected.
func (t *ChannelTransport) Online(id NodeID) bool { return t.view.Online(int(id)) }

// SetOnline flips a node's connectivity in the liveness view.
func (t *ChannelTransport) SetOnline(id NodeID, up bool) {
	if up {
		t.view.MarkAlive(int(id))
	} else {
		t.view.MarkDead(int(id))
	}
}

// OnlineCount returns the number of connected nodes.
func (t *ChannelTransport) OnlineCount() int { return t.view.OnlineCount() }

// OnlineIDs returns the sorted ids of online nodes.
func (t *ChannelTransport) OnlineIDs() []NodeID { return onlineNodeIDs(t.view) }

// Neighbors returns the online neighbors of a node, in ascending id order.
// Links severed by the installed LinkFilter are not traversable.
func (t *ChannelTransport) Neighbors(id NodeID) []NodeID {
	var out []NodeID
	for _, v := range t.graph.Neighbors(int(id)) {
		if t.view.Online(v) && !t.gate.severed(id, NodeID(v)) {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// SetLinkFilter installs the partition hook (see Transport.SetLinkFilter).
func (t *ChannelTransport) SetLinkFilter(fn LinkFilter) { t.gate.set(fn) }

// Degree returns the node's static overlay degree.
func (t *ChannelTransport) Degree(id NodeID) int { return t.graph.Degree(int(id)) }

// HopsWithin returns BFS hop distances from src, bounded by radius.
func (t *ChannelTransport) HopsWithin(src NodeID, radius int) map[NodeID]int {
	dist := t.graph.BFSWithin(int(src), radius)
	out := make(map[NodeID]int, len(dist))
	for v, d := range dist {
		out[NodeID(v)] = d
	}
	return out
}

// latencyBetween picks the edge latency when adjacent, DirectLatency
// otherwise (virtual seconds).
func (t *ChannelTransport) latencyBetween(a, b NodeID) float64 {
	if t.graph.HasEdge(int(a), int(b)) {
		return t.graph.Latency(int(a), int(b))
	}
	return t.cfg.DirectLatency
}

// charge accounts n payload-less transmissions (walks and floods). They
// are driver-side traversals without a destination group, so they tally
// under group 0 — invisible once Counter/Bytes merge the shards.
func (t *ChannelTransport) charge(typ string, n int64) {
	t.eng.chargeBulk(0, typ, n)
}

// Send counts the message and launches its delivery: a goroutine sleeps
// the scaled link latency and hands the message to the dispatcher of the
// destination's group. Lossy links (LossRate > 0) may swallow it silently
// after counting. Messages whose payload is serializable (nil, or with a
// registered wire codec) are charged their real encoded frame length; the
// Sizer estimate remains the fallback, so in-memory and TCP runs report
// comparable byte counts.
func (t *ChannelTransport) Send(msg *Message) {
	if msg.To < 0 || int(msg.To) >= t.graph.Len() {
		panic(fmt.Sprintf("p2p: send to out-of-range node %d", msg.To))
	}
	if t.eng.isClosed() {
		panic("p2p: send on closed ChannelTransport")
	}
	id := t.nextMsg.Add(1)
	if msg.ID == 0 {
		msg.ID = id
	}
	size := messageWireSize(msg)
	if t.cfg.LossRate > 0 {
		t.mu.Lock()
		lost := t.rng.Float64() < t.cfg.LossRate
		t.mu.Unlock()
		if lost {
			// Lost on the wire: counted as sent, never delivered. The
			// charge goes to the destination group like a delivered send.
			t.eng.chargeMessage(t.eng.groupFor(msg.To), msg.Type, size)
			return
		}
	}
	g, ok := t.eng.beginSend(msg.To)
	if !ok {
		panic("p2p: send on closed ChannelTransport")
	}
	t.eng.chargeMessage(g, msg.Type, size)
	lat := t.latencyBetween(msg.From, msg.To)
	delay := time.Duration(lat * float64(t.cfg.LatencyScale))
	go func() {
		if delay > 0 {
			time.Sleep(delay)
		}
		t.eng.groups[g].inbox <- envelope{msg: msg}
	}()
}

// SendNew builds and sends a message.
func (t *ChannelTransport) SendNew(typ string, from, to NodeID, ttl int, payload any) {
	t.Send(&Message{Type: typ, From: from, To: to, TTL: ttl, Payload: payload})
}

// Flood delivers a message of the given type from src to every node within
// ttl hops using Gnutella-style constrained broadcast (§6.2.3).
func (t *ChannelTransport) Flood(typ string, src NodeID, ttl int, payload any, visit func(NodeID)) map[NodeID]bool {
	return runFlood(t, typ, src, ttl, visit)
}

// SelectiveWalk performs the §4.1 find-protocol walk.
func (t *ChannelTransport) SelectiveWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(t, typ, src, maxHops, accept, selectiveChoice(t.Degree))
}

// RandomWalk is the blind baseline: uniform random unvisited neighbor.
func (t *ChannelTransport) RandomWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(t, typ, src, maxHops, accept, func(cands []NodeID) NodeID {
		t.mu.Lock()
		defer t.mu.Unlock()
		return cands[t.rng.Intn(len(cands))]
	})
}

// Settle blocks until every in-flight message — including messages sent by
// handlers while delivering, rerouted drop callbacks and fired timers —
// has been handled. The per-group handshakes plus a verification pass
// under every group lock order all handler effects (across every dispatch
// group) before Settle returns, so callers may read protocol state without
// further synchronization. Calling Settle from a handler would deadlock
// (the current message never finishes) and panics instead.
func (t *ChannelTransport) Settle() { t.eng.settle() }
