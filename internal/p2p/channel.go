package p2p

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"p2psum/internal/stats"
	"p2psum/internal/topology"
)

// ChannelConfig tunes the concurrent in-memory transport.
type ChannelConfig struct {
	// LatencyScale maps one virtual second of link latency onto real time.
	// Overlay link latencies are 0.01–0.2 virtual seconds, so the default
	// of 1ms yields 10–200µs sleeps per hop — real concurrency without
	// making protocol runs crawl. Zero delivers as fast as the scheduler
	// allows (messages still traverse goroutines and may interleave).
	LatencyScale time.Duration
	// LossRate silently drops each unicast with this probability in
	// [0,1): the message is counted as sent (the bytes hit the wire) but
	// never delivered and never reported through the drop callback —
	// genuine packet loss, unlike the offline-receiver drops protocols
	// detect via SetDrop.
	LossRate float64
	// DirectLatency (virtual seconds) is used for node pairs without an
	// overlay edge. Defaults to 0.100, matching Network.
	DirectLatency float64
	// Dispatchers is the number of dispatch groups: every node belongs to
	// exactly one group, each group has its own serialized dispatcher
	// goroutine, inbox and timer set, and distinct groups run their
	// handlers concurrently. 0 or 1 keeps the original single-dispatcher
	// layout (bit-identical behaviour to the pre-sharding transport);
	// values above the node count are clamped.
	Dispatchers int
	// GroupBy maps a node to its dispatch group (reduced modulo
	// Dispatchers). Nil partitions the id space into contiguous blocks.
	// internal/core installs a domain-based mapping via SetGroupBy before
	// construction, so independent domains land on distinct dispatchers.
	GroupBy func(NodeID) int
}

// DefaultChannelConfig returns the defaults described on ChannelConfig.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{LatencyScale: time.Millisecond, DirectLatency: 0.100}
}

// ChannelTransport is the concurrent, real-time Transport: every unicast is
// carried by its own goroutine that sleeps the scaled link latency and then
// hands the message to the dispatcher goroutine owning the destination's
// dispatch group. Each group's dispatcher runs its nodes' handlers
// sequentially, so protocol handlers (which mutate per-node protocol state)
// need no internal locking — the same contract the discrete-event Network
// gives them, narrowed from "one global serial order" to "one serial order
// per group". With Dispatchers <= 1 (the default) there is a single group
// and the transport behaves exactly like the original single-dispatcher
// implementation.
//
// Sharded dispatch exists for multi-domain scale-out: partition the nodes
// by domain (SetGroupBy) and independent domains reconcile and answer
// queries truly in parallel, while handler serialization per node — and
// therefore per domain — is preserved. Cross-group sends are routed through
// the destination group's inbox; drop callbacks are routed to the sender's
// group (they mutate sender-side protocol state, see SetDrop).
//
// Unlike Network, runs are not deterministic: wall-clock scheduling decides
// the delivery interleaving of same-window messages. Use it for scenarios
// the event engine cannot express (real elapsed time, lossy links,
// concurrent load); use Network when bit-for-bit reproducibility matters.
//
// Close must be called when the transport is no longer needed, or the
// dispatcher goroutines leak.
type ChannelTransport struct {
	graph *topology.Graph
	cfg   ChannelConfig

	mu      sync.Mutex
	cond    *sync.Cond
	online  []bool
	handler []Handler
	drop    func(*Message)
	counter *stats.Counter
	volume  *stats.Counter
	rng     *rand.Rand
	nextMsg uint64
	pending int // messages sent but not yet fully handled
	closed  bool
	groupOf []int                    // node -> dispatch group index
	timers  map[*time.Timer]struct{} // armed After timers, stopped on Close
	dispIDs map[uint64]struct{}      // goroutine ids of the dispatchers

	groups []*dispatchGroup
	execMu sync.Mutex // serializes Exec barriers across groups
}

// dispatchGroup is one serialized execution lane: an inbox drained by a
// dedicated dispatcher goroutine.
type dispatchGroup struct {
	inbox chan envelope
}

// envelope is one dispatcher work item: a delivered message, a rerouted
// drop notification, a driver closure submitted through Exec (single-group
// fast path), a fired timer callback, or an Exec barrier.
type envelope struct {
	msg     *Message
	isDrop  bool // msg was dropped; run the drop callback in this group
	fn      func()
	done    chan struct{}
	timer   func()
	barrier *execBarrier
}

// execBarrier parks every dispatch group so an Exec closure can run without
// interleaving with any handler.
type execBarrier struct {
	arrived chan struct{} // one token per parked group
	release chan struct{} // closed once the closure has run
}

// NewChannelTransport builds a concurrent transport over the graph. All
// nodes start online. The dispatcher goroutines (one per dispatch group)
// start immediately.
func NewChannelTransport(graph *topology.Graph, seed int64, cfg ChannelConfig) *ChannelTransport {
	if cfg.LatencyScale < 0 {
		cfg.LatencyScale = 0
	}
	if cfg.DirectLatency == 0 {
		cfg.DirectLatency = 0.100
	}
	n := graph.Len()
	d := cfg.Dispatchers
	if d < 1 {
		d = 1
	}
	if n > 0 && d > n {
		d = n
	}
	cfg.Dispatchers = d
	t := &ChannelTransport{
		graph:   graph,
		cfg:     cfg,
		online:  make([]bool, n),
		handler: make([]Handler, n),
		counter: stats.NewCounter(),
		volume:  stats.NewCounter(),
		rng:     rand.New(rand.NewSource(seed)),
		groupOf: make([]int, n),
		timers:  make(map[*time.Timer]struct{}),
		dispIDs: make(map[uint64]struct{}),
		groups:  make([]*dispatchGroup, d),
	}
	t.cond = sync.NewCond(&t.mu)
	for i := range t.online {
		t.online[i] = true
	}
	groupBy := cfg.GroupBy
	if groupBy == nil {
		// Contiguous id blocks: an even split that keeps single-group mode
		// trivially identical to the unsharded transport.
		groupBy = func(id NodeID) int { return int(id) * d / n }
	}
	t.assignGroups(groupBy)
	for g := range t.groups {
		t.groups[g] = &dispatchGroup{inbox: make(chan envelope, n)}
	}
	started := make(chan struct{})
	for g := range t.groups {
		go t.dispatch(g, started)
	}
	for range t.groups {
		<-started // dispatcher ids registered before any send can race them
	}
	return t
}

// assignGroups recomputes the node -> group mapping. Caller holds t.mu (or
// is the constructor).
func (t *ChannelTransport) assignGroups(fn func(NodeID) int) {
	d := len(t.groups)
	for i := range t.groupOf {
		g := fn(NodeID(i))
		t.groupOf[i] = ((g % d) + d) % d
	}
}

// DispatchGroups returns the number of dispatch groups (>= 1).
func (t *ChannelTransport) DispatchGroups() int { return len(t.groups) }

// GroupOf returns the dispatch group currently owning the node.
func (t *ChannelTransport) GroupOf(id NodeID) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.groupOf[id]
}

// SetGroupBy replaces the node -> dispatch-group mapping (reduced modulo
// DispatchGroups). The mapping can only change while the transport is
// still pristine — before the first Send — because remapping a node with
// messages in flight would break its serialization guarantee; later calls
// return false and keep the current mapping. Any mapping is semantically
// valid (per-node serialization holds regardless); the choice only decides
// which nodes can run concurrently. internal/core calls this with a
// domain-based partition so independent domains get independent
// dispatchers.
func (t *ChannelTransport) SetGroupBy(fn func(NodeID) int) bool {
	if fn == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.nextMsg != 0 || t.pending != 0 {
		return false
	}
	t.assignGroups(fn)
	return true
}

// dispatch drains one group's inbox: message handlers, rerouted drop
// callbacks and fired timers of the group's nodes run here one at a time,
// in arrival order, so their protocol state sees no concurrent mutation.
// Distinct groups run concurrently.
func (t *ChannelTransport) dispatch(g int, started chan<- struct{}) {
	t.mu.Lock()
	t.dispIDs[goid()] = struct{}{}
	t.mu.Unlock()
	started <- struct{}{}
	for env := range t.groups[g].inbox {
		switch {
		case env.barrier != nil:
			// Park until the Exec closure has run on the caller.
			env.barrier.arrived <- struct{}{}
			<-env.barrier.release
		case env.fn != nil:
			env.fn()
			close(env.done)
		case env.timer != nil:
			env.timer()
			t.finish()
		case env.isDrop:
			t.mu.Lock()
			drop := t.drop
			t.mu.Unlock()
			if drop != nil {
				drop(env.msg)
			}
			t.finish()
		default:
			t.deliver(g, env.msg)
		}
	}
}

// deliver hands one message to its destination handler, or routes the drop
// callback: callbacks mutate the *sender's* protocol state (§4.3 failure
// detection), so when sender and receiver live in different groups the
// callback is forwarded to the sender's dispatcher instead of running
// here. The forward rides its own goroutine so two dispatchers can never
// deadlock on each other's full inboxes; the message stays accounted as
// pending until the owning group has run the callback.
func (t *ChannelTransport) deliver(g int, msg *Message) {
	t.mu.Lock()
	up := t.online[msg.To]
	h := t.handler[msg.To]
	drop := t.drop
	gFrom := g
	if msg.From >= 0 && int(msg.From) < len(t.groupOf) {
		gFrom = t.groupOf[msg.From]
	}
	t.mu.Unlock()
	switch {
	case up && h != nil:
		h(msg)
	case drop == nil:
	case gFrom == g:
		drop(msg)
	default:
		go func() { t.groups[gFrom].inbox <- envelope{msg: msg, isDrop: true} }()
		return // pending is settled by the sender's group
	}
	t.finish()
}

// finish retires one pending work item, waking Settle/Close at quiescence.
func (t *ChannelTransport) finish() {
	t.mu.Lock()
	t.pending--
	if t.pending == 0 {
		t.cond.Broadcast()
	}
	t.mu.Unlock()
}

// onDispatcher reports whether the calling goroutine is one of the
// transport's dispatcher goroutines (i.e. we are inside a handler, a drop
// callback or a timer callback).
func (t *ChannelTransport) onDispatcher() bool {
	id := goid()
	t.mu.Lock()
	_, ok := t.dispIDs[id]
	t.mu.Unlock()
	return ok
}

// goid parses the calling goroutine's id from its stack header. It is only
// used on driver entry points (Exec, Settle) to turn silent deadlocks into
// a diagnosable panic, never on the per-message path.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// Exec submits fn to the dispatch layer and blocks until it has run,
// serialized against every handler: with a single group fn runs on the
// dispatcher goroutine between deliveries; with sharded dispatch every
// group is parked at a barrier and fn runs on the caller while no handler
// anywhere is executing. Driver code that mutates protocol state (leave,
// join, construction) goes through here so it never interleaves with a
// handler.
//
// Calling Exec from inside a handler, drop callback or timer callback
// would deadlock the dispatcher — the current work item can never finish
// while Exec waits for it — so that misuse panics instead. Nesting Exec
// inside an Exec'd closure still deadlocks (documented contract).
func (t *ChannelTransport) Exec(fn func()) {
	if t.onDispatcher() {
		panic("p2p: Exec called from a handler/timer on the dispatcher (would deadlock); drivers only")
	}
	t.execMu.Lock()
	defer t.execMu.Unlock()
	if len(t.groups) == 1 {
		// Fast path: identical to the pre-sharding single dispatcher.
		done := make(chan struct{})
		t.groups[0].inbox <- envelope{fn: fn, done: done}
		<-done
		return
	}
	b := &execBarrier{
		arrived: make(chan struct{}, len(t.groups)),
		release: make(chan struct{}),
	}
	for _, g := range t.groups {
		g.inbox <- envelope{barrier: b}
	}
	for range t.groups {
		<-b.arrived
	}
	defer close(b.release) // release even if fn panics
	fn()
}

// After schedules fn on the dispatcher of owner's group, delaySeconds of
// virtual time from now (scaled by LatencyScale like link latencies; with
// LatencyScale 0 — deliver-as-fast-as-possible mode — timers fall back to
// the default 1ms/virtual-second scale so a timeout still fires after, not
// before, the messages it guards). fn is serialized with the handlers of
// owner's group, which is what protocol timers need: they mutate the
// arming node's state. A pending timer does not count as in-flight —
// Settle does not wait for it — but once the real-time delay elapses, fn
// runs on the owning dispatcher and a concurrent Settle blocks until it
// has run. Close cancels every armed timer; timers that already fired
// observe the closed transport and are dropped.
func (t *ChannelTransport) After(owner NodeID, delaySeconds float64, fn func()) {
	scale := t.cfg.LatencyScale
	if scale <= 0 {
		scale = time.Millisecond
	}
	delay := time.Duration(delaySeconds * float64(scale))
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	var tm *time.Timer
	tm = time.AfterFunc(delay, func() {
		t.mu.Lock()
		delete(t.timers, tm)
		if t.closed {
			t.mu.Unlock()
			return
		}
		// Count the callback as pending before releasing the lock: Close
		// settles before closing the inboxes, so the owning dispatcher
		// stays alive until this envelope has been handled.
		t.pending++
		g := 0
		if owner >= 0 && int(owner) < len(t.groupOf) {
			g = t.groupOf[owner]
		}
		t.mu.Unlock()
		t.groups[g].inbox <- envelope{timer: fn}
	})
	t.timers[tm] = struct{}{}
	t.mu.Unlock()
}

// Close shuts every dispatcher down after draining in-flight messages and
// fired timers, and cancels timers that have not fired yet — an idle group
// holds no in-flight work, so its armed timers would otherwise linger in
// the runtime until they fire just to observe the closed flag. The drain
// and the shutdown happen under one lock acquisition, so a timer firing
// concurrently either lands before its inbox closes (pending was
// incremented first) or observes closed and drops. Sending on a closed
// transport panics.
func (t *ChannelTransport) Close() {
	t.mu.Lock()
	for t.pending > 0 {
		t.cond.Wait()
	}
	if !t.closed {
		t.closed = true
		for tm := range t.timers {
			tm.Stop()
		}
		t.timers = make(map[*time.Timer]struct{})
		for _, g := range t.groups {
			close(g.inbox)
		}
	}
	t.mu.Unlock()
}

// Graph returns the overlay topology.
func (t *ChannelTransport) Graph() *topology.Graph { return t.graph }

// Len returns the number of nodes.
func (t *ChannelTransport) Len() int { return t.graph.Len() }

// Counter exposes the per-type message counters. Read it only after
// Settle; the dispatchers write to it concurrently while messages fly.
func (t *ChannelTransport) Counter() *stats.Counter { return t.counter }

// Bytes exposes the per-type traffic volume counters (same caveat as
// Counter).
func (t *ChannelTransport) Bytes() *stats.Counter { return t.volume }

// SetHandler installs the message handler of a node.
func (t *ChannelTransport) SetHandler(id NodeID, h Handler) {
	t.mu.Lock()
	t.handler[id] = h
	t.mu.Unlock()
}

// SetDrop installs the drop callback (§4.3 failure detection). The
// callback runs serialized with the handlers of the dispatch group of the
// *sender* (msg.From): failure detection mutates sender-side protocol
// state, so that is the serialization it needs. With a single group this
// is indistinguishable from the old "serialized with all handlers"
// contract.
func (t *ChannelTransport) SetDrop(fn func(*Message)) {
	t.mu.Lock()
	t.drop = fn
	t.mu.Unlock()
}

// Online reports whether the node is currently connected.
func (t *ChannelTransport) Online(id NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.online[id]
}

// SetOnline flips a node's connectivity.
func (t *ChannelTransport) SetOnline(id NodeID, up bool) {
	t.mu.Lock()
	t.online[id] = up
	t.mu.Unlock()
}

// OnlineCount returns the number of connected nodes.
func (t *ChannelTransport) OnlineCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := 0
	for _, up := range t.online {
		if up {
			c++
		}
	}
	return c
}

// OnlineIDs returns the sorted ids of online nodes.
func (t *ChannelTransport) OnlineIDs() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []NodeID
	for i, up := range t.online {
		if up {
			out = append(out, NodeID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the online neighbors of a node, in ascending id order.
func (t *ChannelTransport) Neighbors(id NodeID) []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []NodeID
	for _, v := range t.graph.Neighbors(int(id)) {
		if t.online[v] {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Degree returns the node's static overlay degree.
func (t *ChannelTransport) Degree(id NodeID) int { return t.graph.Degree(int(id)) }

// HopsWithin returns BFS hop distances from src, bounded by radius.
func (t *ChannelTransport) HopsWithin(src NodeID, radius int) map[NodeID]int {
	dist := t.graph.BFSWithin(int(src), radius)
	out := make(map[NodeID]int, len(dist))
	for v, d := range dist {
		out[NodeID(v)] = d
	}
	return out
}

// latencyBetween picks the edge latency when adjacent, DirectLatency
// otherwise (virtual seconds).
func (t *ChannelTransport) latencyBetween(a, b NodeID) float64 {
	if t.graph.HasEdge(int(a), int(b)) {
		return t.graph.Latency(int(a), int(b))
	}
	return t.cfg.DirectLatency
}

// charge accounts n payload-less transmissions (walks and floods).
func (t *ChannelTransport) charge(typ string, n int64) {
	t.mu.Lock()
	t.counter.Add(typ, n)
	t.volume.Add(typ, n*BaseMessageBytes)
	t.mu.Unlock()
}

// Send counts the message and launches its delivery: a goroutine sleeps
// the scaled link latency and hands the message to the dispatcher of the
// destination's group. Lossy links (LossRate > 0) may swallow it silently
// after counting.
func (t *ChannelTransport) Send(msg *Message) {
	if msg.To < 0 || int(msg.To) >= t.graph.Len() {
		panic(fmt.Sprintf("p2p: send to out-of-range node %d", msg.To))
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		panic("p2p: send on closed ChannelTransport")
	}
	t.nextMsg++
	if msg.ID == 0 {
		msg.ID = t.nextMsg
	}
	t.counter.Inc(msg.Type)
	size := BaseMessageBytes
	if s, ok := msg.Payload.(Sizer); ok {
		size += s.WireSize()
	}
	t.volume.Add(msg.Type, int64(size))
	if t.cfg.LossRate > 0 && t.rng.Float64() < t.cfg.LossRate {
		t.mu.Unlock()
		return // lost on the wire
	}
	t.pending++
	lat := t.latencyBetween(msg.From, msg.To)
	// The mapping is frozen once traffic flows (SetGroupBy), so the group
	// resolved here is still correct when the carrier goroutine delivers.
	g := t.groupOf[msg.To]
	t.mu.Unlock()

	delay := time.Duration(lat * float64(t.cfg.LatencyScale))
	go func() {
		if delay > 0 {
			time.Sleep(delay)
		}
		t.groups[g].inbox <- envelope{msg: msg}
	}()
}

// SendNew builds and sends a message.
func (t *ChannelTransport) SendNew(typ string, from, to NodeID, ttl int, payload any) {
	t.Send(&Message{Type: typ, From: from, To: to, TTL: ttl, Payload: payload})
}

// Flood delivers a message of the given type from src to every node within
// ttl hops using Gnutella-style constrained broadcast (§6.2.3).
func (t *ChannelTransport) Flood(typ string, src NodeID, ttl int, payload any, visit func(NodeID)) map[NodeID]bool {
	return runFlood(t, typ, src, ttl, visit)
}

// SelectiveWalk performs the §4.1 find-protocol walk.
func (t *ChannelTransport) SelectiveWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(t, typ, src, maxHops, accept, selectiveChoice(t.Degree))
}

// RandomWalk is the blind baseline: uniform random unvisited neighbor.
func (t *ChannelTransport) RandomWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(t, typ, src, maxHops, accept, func(cands []NodeID) NodeID {
		t.mu.Lock()
		defer t.mu.Unlock()
		return cands[t.rng.Intn(len(cands))]
	})
}

// Settle blocks until every in-flight message — including messages sent by
// handlers while delivering, rerouted drop callbacks and fired timers —
// has been handled. The condition-variable handshake orders all handler
// effects (across every dispatch group) before Settle returns, so callers
// may read protocol state without further synchronization. Calling Settle
// from a handler would deadlock (the current message never finishes) and
// panics instead.
func (t *ChannelTransport) Settle() {
	if t.onDispatcher() {
		panic("p2p: Settle called from a handler/timer on the dispatcher (would deadlock); drivers only")
	}
	t.mu.Lock()
	for t.pending > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
}
