package p2p

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"p2psum/internal/stats"
	"p2psum/internal/topology"
)

// ChannelConfig tunes the concurrent in-memory transport.
type ChannelConfig struct {
	// LatencyScale maps one virtual second of link latency onto real time.
	// Overlay link latencies are 0.01–0.2 virtual seconds, so the default
	// of 1ms yields 10–200µs sleeps per hop — real concurrency without
	// making protocol runs crawl. Zero delivers as fast as the scheduler
	// allows (messages still traverse goroutines and may interleave).
	LatencyScale time.Duration
	// LossRate silently drops each unicast with this probability in
	// [0,1): the message is counted as sent (the bytes hit the wire) but
	// never delivered and never reported through the drop callback —
	// genuine packet loss, unlike the offline-receiver drops protocols
	// detect via SetDrop.
	LossRate float64
	// DirectLatency (virtual seconds) is used for node pairs without an
	// overlay edge. Defaults to 0.100, matching Network.
	DirectLatency float64
}

// DefaultChannelConfig returns the defaults described on ChannelConfig.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{LatencyScale: time.Millisecond, DirectLatency: 0.100}
}

// ChannelTransport is the concurrent, real-time Transport: every unicast is
// carried by its own goroutine that sleeps the scaled link latency and then
// hands the message to a single dispatcher goroutine. The dispatcher runs
// node handlers sequentially, so protocol handlers (which mutate shared
// protocol state) need no internal locking — the same contract the
// discrete-event Network gives them.
//
// Unlike Network, runs are not deterministic: wall-clock scheduling decides
// the delivery interleaving of same-window messages. Use it for scenarios
// the event engine cannot express (real elapsed time, lossy links,
// concurrent load); use Network when bit-for-bit reproducibility matters.
//
// Close must be called when the transport is no longer needed, or the
// dispatcher goroutine leaks.
type ChannelTransport struct {
	graph *topology.Graph
	cfg   ChannelConfig

	mu      sync.Mutex
	cond    *sync.Cond
	online  []bool
	handler []Handler
	drop    func(*Message)
	counter *stats.Counter
	volume  *stats.Counter
	rng     *rand.Rand
	nextMsg uint64
	pending int // messages sent but not yet fully handled
	closed  bool

	deliver chan envelope
}

// envelope is one dispatcher work item: a delivered message, a driver
// closure submitted through Exec, or a fired timer callback.
type envelope struct {
	msg   *Message
	fn    func()
	done  chan struct{}
	timer func()
}

// NewChannelTransport builds a concurrent transport over the graph. All
// nodes start online. The dispatcher goroutine starts immediately.
func NewChannelTransport(graph *topology.Graph, seed int64, cfg ChannelConfig) *ChannelTransport {
	if cfg.LatencyScale < 0 {
		cfg.LatencyScale = 0
	}
	if cfg.DirectLatency == 0 {
		cfg.DirectLatency = 0.100
	}
	t := &ChannelTransport{
		graph:   graph,
		cfg:     cfg,
		online:  make([]bool, graph.Len()),
		handler: make([]Handler, graph.Len()),
		counter: stats.NewCounter(),
		volume:  stats.NewCounter(),
		rng:     rand.New(rand.NewSource(seed)),
		deliver: make(chan envelope, graph.Len()),
	}
	t.cond = sync.NewCond(&t.mu)
	for i := range t.online {
		t.online[i] = true
	}
	go t.dispatch()
	return t
}

// dispatch serializes all protocol-state access: message handlers, drop
// callbacks and Exec closures run here one at a time, in arrival order, so
// protocol state sees no concurrent mutation.
func (t *ChannelTransport) dispatch() {
	for env := range t.deliver {
		if env.fn != nil {
			env.fn()
			close(env.done)
			continue
		}
		if env.timer != nil {
			env.timer()
			t.mu.Lock()
			t.pending--
			if t.pending == 0 {
				t.cond.Broadcast()
			}
			t.mu.Unlock()
			continue
		}
		msg := env.msg
		t.mu.Lock()
		up := t.online[msg.To]
		h := t.handler[msg.To]
		drop := t.drop
		t.mu.Unlock()
		if !up || h == nil {
			if drop != nil {
				drop(msg)
			}
		} else {
			h(msg)
		}
		t.mu.Lock()
		t.pending--
		if t.pending == 0 {
			t.cond.Broadcast()
		}
		t.mu.Unlock()
	}
}

// Exec submits fn to the dispatcher and blocks until it has run. Driver
// code that mutates protocol state (leave, join, construction) goes
// through here so it never interleaves with a handler. Calling Exec from
// inside a handler or an Exec'd closure deadlocks the dispatcher.
func (t *ChannelTransport) Exec(fn func()) {
	done := make(chan struct{})
	t.deliver <- envelope{fn: fn, done: done}
	<-done
}

// After schedules fn on the dispatcher, delaySeconds of virtual time from
// now (scaled by LatencyScale like link latencies; with LatencyScale 0 —
// deliver-as-fast-as-possible mode — timers fall back to the default
// 1ms/virtual-second scale so a timeout still fires after, not before, the
// messages it guards). A pending timer does not count as in-flight —
// Settle does not wait for it — but once the real-time delay elapses, fn
// runs on the dispatcher goroutine, serialized with handlers, and a
// concurrent Settle blocks until it has run. Timers that fire after Close
// are dropped.
func (t *ChannelTransport) After(delaySeconds float64, fn func()) {
	scale := t.cfg.LatencyScale
	if scale <= 0 {
		scale = time.Millisecond
	}
	delay := time.Duration(delaySeconds * float64(scale))
	time.AfterFunc(delay, func() {
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			return
		}
		// Count the callback as pending before releasing the lock: Close
		// settles before closing the channel, so the dispatcher stays alive
		// until this envelope has been handled.
		t.pending++
		t.mu.Unlock()
		t.deliver <- envelope{timer: fn}
	})
}

// Close shuts the dispatcher down after draining in-flight messages and
// fired timers. The drain and the shutdown happen under one lock
// acquisition, so a timer firing concurrently either lands before the
// channel closes (pending was incremented first) or observes closed and
// drops. Sending on a closed transport panics.
func (t *ChannelTransport) Close() {
	t.mu.Lock()
	for t.pending > 0 {
		t.cond.Wait()
	}
	if !t.closed {
		t.closed = true
		close(t.deliver)
	}
	t.mu.Unlock()
}

// Graph returns the overlay topology.
func (t *ChannelTransport) Graph() *topology.Graph { return t.graph }

// Len returns the number of nodes.
func (t *ChannelTransport) Len() int { return t.graph.Len() }

// Counter exposes the per-type message counters. Read it only after
// Settle; the dispatcher writes to it concurrently while messages fly.
func (t *ChannelTransport) Counter() *stats.Counter { return t.counter }

// Bytes exposes the per-type traffic volume counters (same caveat as
// Counter).
func (t *ChannelTransport) Bytes() *stats.Counter { return t.volume }

// SetHandler installs the message handler of a node.
func (t *ChannelTransport) SetHandler(id NodeID, h Handler) {
	t.mu.Lock()
	t.handler[id] = h
	t.mu.Unlock()
}

// SetDrop installs the drop callback (§4.3 failure detection). The
// callback runs on the dispatcher goroutine, serialized with handlers.
func (t *ChannelTransport) SetDrop(fn func(*Message)) {
	t.mu.Lock()
	t.drop = fn
	t.mu.Unlock()
}

// Online reports whether the node is currently connected.
func (t *ChannelTransport) Online(id NodeID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.online[id]
}

// SetOnline flips a node's connectivity.
func (t *ChannelTransport) SetOnline(id NodeID, up bool) {
	t.mu.Lock()
	t.online[id] = up
	t.mu.Unlock()
}

// OnlineCount returns the number of connected nodes.
func (t *ChannelTransport) OnlineCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := 0
	for _, up := range t.online {
		if up {
			c++
		}
	}
	return c
}

// OnlineIDs returns the sorted ids of online nodes.
func (t *ChannelTransport) OnlineIDs() []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []NodeID
	for i, up := range t.online {
		if up {
			out = append(out, NodeID(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns the online neighbors of a node, in ascending id order.
func (t *ChannelTransport) Neighbors(id NodeID) []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []NodeID
	for _, v := range t.graph.Neighbors(int(id)) {
		if t.online[v] {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// Degree returns the node's static overlay degree.
func (t *ChannelTransport) Degree(id NodeID) int { return t.graph.Degree(int(id)) }

// HopsWithin returns BFS hop distances from src, bounded by radius.
func (t *ChannelTransport) HopsWithin(src NodeID, radius int) map[NodeID]int {
	dist := t.graph.BFSWithin(int(src), radius)
	out := make(map[NodeID]int, len(dist))
	for v, d := range dist {
		out[NodeID(v)] = d
	}
	return out
}

// latencyBetween picks the edge latency when adjacent, DirectLatency
// otherwise (virtual seconds).
func (t *ChannelTransport) latencyBetween(a, b NodeID) float64 {
	if t.graph.HasEdge(int(a), int(b)) {
		return t.graph.Latency(int(a), int(b))
	}
	return t.cfg.DirectLatency
}

// charge accounts n payload-less transmissions (walks and floods).
func (t *ChannelTransport) charge(typ string, n int64) {
	t.mu.Lock()
	t.counter.Add(typ, n)
	t.volume.Add(typ, n*BaseMessageBytes)
	t.mu.Unlock()
}

// Send counts the message and launches its delivery: a goroutine sleeps
// the scaled link latency and hands the message to the dispatcher. Lossy
// links (LossRate > 0) may swallow it silently after counting.
func (t *ChannelTransport) Send(msg *Message) {
	if msg.To < 0 || int(msg.To) >= t.graph.Len() {
		panic(fmt.Sprintf("p2p: send to out-of-range node %d", msg.To))
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		panic("p2p: send on closed ChannelTransport")
	}
	t.nextMsg++
	if msg.ID == 0 {
		msg.ID = t.nextMsg
	}
	t.counter.Inc(msg.Type)
	size := BaseMessageBytes
	if s, ok := msg.Payload.(Sizer); ok {
		size += s.WireSize()
	}
	t.volume.Add(msg.Type, int64(size))
	if t.cfg.LossRate > 0 && t.rng.Float64() < t.cfg.LossRate {
		t.mu.Unlock()
		return // lost on the wire
	}
	t.pending++
	lat := t.latencyBetween(msg.From, msg.To)
	t.mu.Unlock()

	delay := time.Duration(lat * float64(t.cfg.LatencyScale))
	go func() {
		if delay > 0 {
			time.Sleep(delay)
		}
		t.deliver <- envelope{msg: msg}
	}()
}

// SendNew builds and sends a message.
func (t *ChannelTransport) SendNew(typ string, from, to NodeID, ttl int, payload any) {
	t.Send(&Message{Type: typ, From: from, To: to, TTL: ttl, Payload: payload})
}

// Flood delivers a message of the given type from src to every node within
// ttl hops using Gnutella-style constrained broadcast (§6.2.3).
func (t *ChannelTransport) Flood(typ string, src NodeID, ttl int, payload any, visit func(NodeID)) map[NodeID]bool {
	return runFlood(t, typ, src, ttl, visit)
}

// SelectiveWalk performs the §4.1 find-protocol walk.
func (t *ChannelTransport) SelectiveWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(t, typ, src, maxHops, accept, selectiveChoice(t.Degree))
}

// RandomWalk is the blind baseline: uniform random unvisited neighbor.
func (t *ChannelTransport) RandomWalk(typ string, src NodeID, maxHops int, accept func(NodeID) bool) WalkResult {
	return runWalk(t, typ, src, maxHops, accept, func(cands []NodeID) NodeID {
		t.mu.Lock()
		defer t.mu.Unlock()
		return cands[t.rng.Intn(len(cands))]
	})
}

// Settle blocks until every in-flight message — including messages sent by
// handlers while delivering — has been handled. The condition-variable
// handshake orders all handler effects before Settle returns, so callers
// may read protocol state without further synchronization.
func (t *ChannelTransport) Settle() {
	t.mu.Lock()
	for t.pending > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
}
