package p2p

import (
	"fmt"
	"testing"

	"p2psum/internal/topology"
)

// BenchmarkGroupedDispatchThroughput measures concurrent handler
// throughput under sharded dispatch: independent star domains serve
// CPU-bound request/response pairs (a stand-in for summary-query messages
// answered at a domain peer), and the dispatcher count decides how many
// domains' handlers run in parallel. Expected shape: messages/sec grows
// with dispatchers until the domain count (8) or GOMAXPROCS is reached —
// on a single-CPU box the CPU-bound handlers cannot overlap and the curve
// is flat (see BenchmarkMultiDomainReconcile in internal/experiments,
// whose queue-contention relief shows even there).
func BenchmarkGroupedDispatchThroughput(b *testing.B) {
	const clusters, size = 8, 8
	for _, d := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dispatchers=%d", d), func(b *testing.B) {
			g, _ := topology.DisjointStars(clusters, size, 0.02)
			ct := NewChannelTransport(g, 1, ChannelConfig{
				Dispatchers: d,
				GroupBy:     func(id NodeID) int { return int(id) / size },
			})
			defer ct.Close()
			work := func() {
				// ~10µs of handler CPU: the summary selection a query
				// message costs at a domain peer. Handler work must
				// dominate the per-message bookkeeping for the dispatcher
				// count to matter, exactly like real data-level handlers.
				s := 0.0
				for k := 1; k < 4000; k++ {
					s += 1 / float64(k)
				}
				benchSink = s
			}
			for i := 0; i < ct.Len(); i++ {
				id := NodeID(i)
				if int(id)%size == 0 {
					// Hub: answer the request to the asking spoke.
					ct.SetHandler(id, func(msg *Message) {
						work()
						ct.SendNew("resp", id, msg.From, 0, nil)
					})
				} else {
					ct.SetHandler(id, func(msg *Message) { work() })
				}
			}
			b.ResetTimer()
			sent := 0
			for sent < b.N {
				batch := 512
				if rem := b.N - sent; rem < batch {
					batch = rem
				}
				for k := 0; k < batch; k++ {
					i := (sent + k) % (clusters * (size - 1))
					c, s := i/(size-1), i%(size-1)+1
					ct.SendNew("req", NodeID(c*size+s), NodeID(c*size), 0, nil)
				}
				sent += batch
				ct.Settle()
			}
			b.StopTimer()
			b.ReportMetric(float64(2*b.N)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// benchSink defeats dead-code elimination of the benchmark handler work.
var benchSink float64
