package p2p

import (
	"runtime"
	"sync"
	"time"

	"p2psum/internal/stats"
)

// This file holds the dispatch engine: the handler-serialization machinery
// shared by the concurrent transports. ChannelTransport (in-memory,
// goroutine delivery) and TCPTransport (real sockets) both embed it; the
// deterministic Network needs none of this because the discrete-event
// engine is single-threaded.
//
// The engine owns the dispatch groups — each a serialized execution lane
// with its own inbox, dispatcher goroutine, pending-work count and message
// counters — plus the timers, the Exec barrier and the Settle/Close
// quiescence logic. What it does NOT own is delivery policy: the embedding
// transport supplies a deliver callback that looks up handlers, routes
// drop notifications (possibly across processes) and retires the pending
// count, because that is where the transports genuinely differ.
//
// Bookkeeping is sharded per group (the PR 3 follow-up named in ROADMAP):
// every group counts its own pending work and tallies its own message/byte
// counters under its own lock, and readers merge across groups. At high
// message rates the groups therefore never contend on shared accounting —
// the old single transport-wide mutex is gone.

// dispatchGroup is one serialized execution lane: an inbox drained by a
// dedicated dispatcher goroutine, plus the group's own share of the
// transport bookkeeping (pending-work count, message and byte counters),
// each guarded by the group's own lock.
type dispatchGroup struct {
	inbox chan envelope

	mu      sync.Mutex
	cond    *sync.Cond
	pending int // work items sent to this group but not yet fully handled
	counter *stats.Counter
	volume  *stats.Counter
}

// envelope is one dispatcher work item: a delivered message, a (possibly
// rerouted) drop notification, a driver closure submitted through Exec
// (single-group fast path), a fired timer callback, or an Exec barrier.
type envelope struct {
	msg     *Message
	isDrop  bool // msg was dropped; run the drop callback in this group
	fn      func()
	done    chan struct{}
	timer   func()
	barrier *execBarrier
	origin  string // TCP: address of the remote process the frame came from
}

// execBarrier parks every dispatch group so an Exec closure can run without
// interleaving with any handler.
type execBarrier struct {
	arrived chan struct{} // one token per parked group
	release chan struct{} // closed once the closure has run
}

// dispatchEngine is the shared concurrency core of the goroutine-backed
// transports. See the file comment for the division of labour with the
// embedding transport.
type dispatchEngine struct {
	// deliver handles message and drop envelopes; the transport must retire
	// the group's pending count (finishPending) or transfer it
	// (movePending) before returning control to the dispatcher loop's next
	// iteration.
	deliver func(g int, env envelope)

	mu      sync.Mutex               // guards groupOf, timers, dispIDs, closed
	groupOf []int                    // node -> dispatch group index
	timers  map[*time.Timer]struct{} // armed After timers, stopped on Close
	dispIDs map[uint64]struct{}      // goroutine ids of the dispatchers
	closed  bool

	groups []*dispatchGroup
	execMu sync.Mutex // serializes Exec barriers across groups
}

// newDispatchEngine builds the groups and starts one dispatcher goroutine
// per group. n is the node count, d the group count (clamped to [1, n]),
// groupBy the initial node -> group mapping (nil partitions the id space
// into contiguous blocks). deliver is the transport's delivery policy.
func newDispatchEngine(n, d int, groupBy func(NodeID) int, deliver func(g int, env envelope)) *dispatchEngine {
	if d < 1 {
		d = 1
	}
	if n > 0 && d > n {
		d = n
	}
	e := &dispatchEngine{
		deliver: deliver,
		groupOf: make([]int, n),
		timers:  make(map[*time.Timer]struct{}),
		dispIDs: make(map[uint64]struct{}),
		groups:  make([]*dispatchGroup, d),
	}
	if groupBy == nil {
		// Contiguous id blocks: an even split that keeps single-group mode
		// trivially identical to the unsharded transport.
		groupBy = func(id NodeID) int { return int(id) * d / n }
	}
	e.assignGroups(groupBy)
	for g := range e.groups {
		grp := &dispatchGroup{
			inbox:   make(chan envelope, max(n, 1)),
			counter: stats.NewCounter(),
			volume:  stats.NewCounter(),
		}
		grp.cond = sync.NewCond(&grp.mu)
		e.groups[g] = grp
	}
	started := make(chan struct{})
	for g := range e.groups {
		go e.dispatch(g, started)
	}
	for range e.groups {
		<-started // dispatcher ids registered before any send can race them
	}
	return e
}

// assignGroups recomputes the node -> group mapping. Caller holds e.mu (or
// is the constructor).
func (e *dispatchEngine) assignGroups(fn func(NodeID) int) {
	d := len(e.groups)
	for i := range e.groupOf {
		g := fn(NodeID(i))
		e.groupOf[i] = ((g % d) + d) % d
	}
}

// groupCount returns the number of dispatch groups (>= 1).
func (e *dispatchEngine) groupCount() int { return len(e.groups) }

// groupFor returns the dispatch group currently owning the node.
func (e *dispatchEngine) groupFor(id NodeID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.groupOf[id]
}

// remap replaces the node -> group mapping if the engine is still pristine:
// not closed and with no pending work anywhere. It reports whether the
// mapping was applied. Transports layer their own pristineness checks (e.g.
// "no message ever sent") on top.
func (e *dispatchEngine) remap(fn func(NodeID) int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	for _, g := range e.groups {
		g.mu.Lock()
		p := g.pending
		g.mu.Unlock()
		if p != 0 {
			return false
		}
	}
	e.assignGroups(fn)
	return true
}

// beginSend accounts one new work item bound for the node's group and
// returns the group index. It fails (ok = false) when the engine is
// closed. The pending count is incremented before the caller enqueues or
// launches a carrier, so Settle and Close can never miss the item.
func (e *dispatchEngine) beginSend(to NodeID) (g int, ok bool) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0, false
	}
	g = e.groupOf[to]
	grp := e.groups[g]
	grp.mu.Lock()
	grp.pending++
	grp.mu.Unlock()
	e.mu.Unlock()
	return g, true
}

// addPending counts one new work item for group g directly (timer fires,
// cross-group transfers — paths already serialized against Close).
func (e *dispatchEngine) addPending(g int) {
	grp := e.groups[g]
	grp.mu.Lock()
	grp.pending++
	grp.mu.Unlock()
}

// beginSendGroup is addPending with the closed check of beginSend, for
// work arriving from outside the dispatch layer (socket readers, drop
// echoes) that could otherwise race Close and enqueue on a closed inbox.
func (e *dispatchEngine) beginSendGroup(g int) bool {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return false
	}
	e.addPending(g)
	e.mu.Unlock()
	return true
}

// finishPending retires one pending work item of group g, waking
// Settle/Close at quiescence.
func (e *dispatchEngine) finishPending(g int) {
	grp := e.groups[g]
	grp.mu.Lock()
	grp.pending--
	if grp.pending == 0 {
		grp.cond.Broadcast()
	}
	grp.mu.Unlock()
}

// movePending transfers one pending work item from group `from` to group
// `to`. The target is incremented before the source is decremented, so the
// total outstanding count never transiently reads zero — the invariant
// Settle's verification pass relies on.
func (e *dispatchEngine) movePending(to, from int) {
	e.addPending(to)
	e.finishPending(from)
}

// chargeMessage tallies one message of the given encoded size under group
// g's counters.
func (e *dispatchEngine) chargeMessage(g int, typ string, size int64) {
	grp := e.groups[g]
	grp.mu.Lock()
	grp.counter.Inc(typ)
	grp.volume.Add(typ, size)
	grp.mu.Unlock()
}

// chargeBulk tallies n payload-less transmissions (walks and floods) under
// group g's counters.
func (e *dispatchEngine) chargeBulk(g int, typ string, n int64) {
	grp := e.groups[g]
	grp.mu.Lock()
	grp.counter.Add(typ, n)
	grp.volume.Add(typ, n*BaseMessageBytes)
	grp.mu.Unlock()
}

// mergedCounter merges the per-group message counters into a fresh
// snapshot. Safe to call while dispatchers are running: each group is read
// under its own lock.
func (e *dispatchEngine) mergedCounter() *stats.Counter {
	out := stats.NewCounter()
	for _, g := range e.groups {
		g.mu.Lock()
		out.Merge(g.counter)
		g.mu.Unlock()
	}
	return out
}

// mergedVolume merges the per-group byte counters into a fresh snapshot.
func (e *dispatchEngine) mergedVolume() *stats.Counter {
	out := stats.NewCounter()
	for _, g := range e.groups {
		g.mu.Lock()
		out.Merge(g.volume)
		g.mu.Unlock()
	}
	return out
}

// dispatch drains one group's inbox: message handlers, rerouted drop
// callbacks and fired timers of the group's nodes run here one at a time,
// in arrival order, so their protocol state sees no concurrent mutation.
// Distinct groups run concurrently.
func (e *dispatchEngine) dispatch(g int, started chan<- struct{}) {
	e.mu.Lock()
	e.dispIDs[goid()] = struct{}{}
	e.mu.Unlock()
	started <- struct{}{}
	for env := range e.groups[g].inbox {
		switch {
		case env.barrier != nil:
			// Park until the Exec closure has run on the caller.
			env.barrier.arrived <- struct{}{}
			<-env.barrier.release
		case env.fn != nil:
			env.fn()
			close(env.done)
		case env.timer != nil:
			env.timer()
			e.finishPending(g)
		default:
			e.deliver(g, env)
		}
	}
}

// onDispatcher reports whether the calling goroutine is one of the
// engine's dispatcher goroutines (i.e. we are inside a handler, a drop
// callback or a timer callback).
func (e *dispatchEngine) onDispatcher() bool {
	id := goid()
	e.mu.Lock()
	_, ok := e.dispIDs[id]
	e.mu.Unlock()
	return ok
}

// goid parses the calling goroutine's id from its stack header. It is only
// used on driver entry points (Exec, Settle) to turn silent deadlocks into
// a diagnosable panic, never on the per-message path.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// exec submits fn to the dispatch layer and blocks until it has run,
// serialized against every handler: with a single group fn runs on the
// dispatcher goroutine between deliveries; with sharded dispatch every
// group is parked at a barrier and fn runs on the caller while no handler
// anywhere is executing. Calling it from a dispatcher goroutine panics
// (it would deadlock the dispatcher).
func (e *dispatchEngine) exec(fn func()) {
	if e.onDispatcher() {
		panic("p2p: Exec called from a handler/timer on the dispatcher (would deadlock); drivers only")
	}
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if len(e.groups) == 1 {
		// Fast path: identical to the pre-sharding single dispatcher.
		done := make(chan struct{})
		e.groups[0].inbox <- envelope{fn: fn, done: done}
		<-done
		return
	}
	b := &execBarrier{
		arrived: make(chan struct{}, len(e.groups)),
		release: make(chan struct{}),
	}
	for _, g := range e.groups {
		g.inbox <- envelope{barrier: b}
	}
	for range e.groups {
		<-b.arrived
	}
	defer close(b.release) // release even if fn panics
	fn()
}

// after schedules fn on the dispatcher of owner's group once the real-time
// delay elapses. A pending timer does not count as in-flight — Settle does
// not wait for it — but once it fires the callback is counted before the
// engine lock drops, so Close keeps the owning dispatcher alive until the
// envelope has been handled.
func (e *dispatchEngine) after(owner NodeID, delay time.Duration, fn func()) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	var tm *time.Timer
	tm = time.AfterFunc(delay, func() {
		e.mu.Lock()
		delete(e.timers, tm)
		if e.closed {
			e.mu.Unlock()
			return
		}
		g := 0
		if owner >= 0 && int(owner) < len(e.groupOf) {
			g = e.groupOf[owner]
		}
		// Count the callback as pending before releasing the engine lock:
		// Close verifies quiescence under this lock before closing the
		// inboxes, so the owning dispatcher stays alive until this envelope
		// has been handled.
		e.addPending(g)
		e.mu.Unlock()
		e.groups[g].inbox <- envelope{timer: fn}
	})
	e.timers[tm] = struct{}{}
	e.mu.Unlock()
}

// waitIdle blocks until every group's pending count has been observed at
// zero, then verifies quiescence under all locks at once: with the engine
// lock and every group lock held no new work can be accounted, and the
// "increment the target before decrementing the source" transfer invariant
// guarantees that in-flight migrations (cross-group drop reroutes, handler
// sends) are visible in at least one group's count. A failed verification
// restarts the wait — work migrated behind the scan.
func (e *dispatchEngine) waitIdle() {
	for {
		for _, g := range e.groups {
			g.mu.Lock()
			for g.pending > 0 {
				g.cond.Wait()
			}
			g.mu.Unlock()
		}
		if e.verifyIdle() {
			return
		}
	}
}

// verifyIdle checks that every group is pending-free under the engine lock
// plus every group lock (a frozen, consistent snapshot).
func (e *dispatchEngine) verifyIdle() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.verifyIdleLocked()
}

func (e *dispatchEngine) verifyIdleLocked() bool {
	for _, g := range e.groups {
		g.mu.Lock()
	}
	idle := true
	for _, g := range e.groups {
		if g.pending != 0 {
			idle = false
		}
	}
	for _, g := range e.groups {
		g.mu.Unlock()
	}
	return idle
}

// idleNow reports a best-effort snapshot of quiescence without the full
// verification (used by the TCP status protocol, whose two-round stability
// check absorbs the raciness).
func (e *dispatchEngine) idleNow() bool {
	for _, g := range e.groups {
		g.mu.Lock()
		p := g.pending
		g.mu.Unlock()
		if p != 0 {
			return false
		}
	}
	return true
}

// settle blocks until every in-flight work item (and everything sent while
// handling it) has been handled. Calling it from a handler would deadlock
// and panics instead.
func (e *dispatchEngine) settle() {
	if e.onDispatcher() {
		panic("p2p: Settle called from a handler/timer on the dispatcher (would deadlock); drivers only")
	}
	e.waitIdle()
}

// closeEngine shuts every dispatcher down after draining in-flight work,
// and cancels timers that have not fired yet. The final drain verification
// and the shutdown happen under the engine lock, so a timer firing
// concurrently either lands before its inbox closes (pending was
// incremented under the same lock first) or observes closed and drops.
func (e *dispatchEngine) closeEngine() {
	for {
		for _, g := range e.groups {
			g.mu.Lock()
			for g.pending > 0 {
				g.cond.Wait()
			}
			g.mu.Unlock()
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		if !e.verifyIdleLocked() {
			e.mu.Unlock()
			continue // work migrated behind the scan; drain again
		}
		e.closed = true
		for tm := range e.timers {
			tm.Stop()
		}
		e.timers = make(map[*time.Timer]struct{})
		for _, g := range e.groups {
			close(g.inbox)
		}
		e.mu.Unlock()
		return
	}
}

// isClosed reports whether Close has completed.
func (e *dispatchEngine) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}
