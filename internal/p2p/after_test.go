package p2p

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"p2psum/internal/sim"
	"p2psum/internal/topology"
)

func afterGraph(t *testing.T, seed int64) *topology.Graph {
	t.Helper()
	g, err := topology.BarabasiAlbert(8, 2, nil, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestNetworkAfter: on the event engine a timer is a regular event at the
// right virtual time, ordered against message deliveries.
func TestNetworkAfter(t *testing.T) {
	e := sim.New()
	n := NewNetwork(e, afterGraph(t, 3), 3)
	var firedAt sim.Time
	n.After(0, 5, func() { firedAt = e.Now() })
	e.Run()
	if firedAt != sim.Seconds(5) {
		t.Errorf("timer fired at %v, want %v", firedAt, sim.Seconds(5))
	}
}

// TestChannelAfterFires: the callback runs on the dispatcher (serialized
// with handlers) after the scaled delay, and a Settle issued afterwards
// observes its effects.
func TestChannelAfterFires(t *testing.T) {
	ct := NewChannelTransport(afterGraph(t, 4), 4, DefaultChannelConfig())
	defer ct.Close()
	var fired atomic.Bool
	ct.After(0, 1, func() { fired.Store(true) }) // 1 virtual s -> 1ms real
	deadline := time.Now().Add(5 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("timer never fired")
		}
		time.Sleep(time.Millisecond)
	}
	ct.Settle() // must not deadlock with the fired timer's accounting
}

// TestChannelSettleDoesNotWaitForPendingTimer: a timer far in the future
// must not stall Settle — timers are not in-flight messages.
func TestChannelSettleDoesNotWaitForPendingTimer(t *testing.T) {
	ct := NewChannelTransport(afterGraph(t, 5), 5, DefaultChannelConfig())
	defer ct.Close()
	ct.After(0, 60_000, func() {}) // one virtual minute -> 60s real: never fires in-test
	start := time.Now()
	ct.Settle()
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("Settle waited %v for a pending timer", el)
	}
}

// TestChannelAfterDroppedOnClose: a timer that fires after Close is
// discarded without panicking or resurrecting the dispatcher.
func TestChannelAfterDroppedOnClose(t *testing.T) {
	ct := NewChannelTransport(afterGraph(t, 6), 6, DefaultChannelConfig())
	var fired atomic.Bool
	ct.After(0, 20, func() { fired.Store(true) }) // ~20ms real
	ct.Close()
	time.Sleep(60 * time.Millisecond)
	if fired.Load() {
		t.Error("timer fired after Close")
	}
}

// TestChannelAfterZeroScale: LatencyScale 0 (deliver-ASAP mode) still maps
// timer delays onto real time, so a timeout fires after the messages it
// guards rather than instantly.
func TestChannelAfterZeroScale(t *testing.T) {
	ct := NewChannelTransport(afterGraph(t, 7), 7, ChannelConfig{})
	defer ct.Close()
	var seq, msgAt, timerAt atomic.Int32
	ct.SetHandler(1, func(*Message) { msgAt.Store(seq.Add(1)) })
	ct.After(0, 5, func() { timerAt.Store(seq.Add(1)) })
	ct.SendNew("ping", 0, 1, 0, nil)
	ct.Settle()
	deadline := time.Now().Add(5 * time.Second)
	for timerAt.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer never fired under zero latency scale")
		}
		time.Sleep(time.Millisecond)
	}
	if msgAt.Load() != 1 || timerAt.Load() != 2 {
		t.Errorf("order: message %d, timer %d; want message first", msgAt.Load(), timerAt.Load())
	}
}
