package p2p

import (
	"sync"
	"testing"

	"p2psum/internal/sim"
)

// The link-filter suite pins the partition hook on all three transports:
// a severed link is counted as sent, surfaces through the §4.3 drop
// callback instead of the handler, disappears from Neighbors, and heals
// the moment the filter is removed.

// cutAB severs the directed pair {a,b} in both directions.
func cutAB(a, b NodeID) LinkFilter {
	return func(from, to NodeID) bool {
		return (from == a && to == b) || (from == b && to == a)
	}
}

func TestLinkFilterNetwork(t *testing.T) {
	eng := sim.New()
	net := NewNetwork(eng, lineGraph(t, 3), 1)
	var delivered, dropped []uint64
	for id := 0; id < 3; id++ {
		net.SetHandler(NodeID(id), func(msg *Message) {
			delivered = append(delivered, msg.ID)
		})
	}
	net.SetDrop(func(msg *Message) { dropped = append(dropped, msg.ID) })

	net.SetLinkFilter(cutAB(0, 1))
	if nbs := net.Neighbors(0); len(nbs) != 0 {
		t.Fatalf("Neighbors(0) across the cut = %v, want none", nbs)
	}
	if nbs := net.Neighbors(1); len(nbs) != 1 || nbs[0] != 2 {
		t.Fatalf("Neighbors(1) = %v, want [2]", nbs)
	}
	net.SendNew("x", 0, 1, 0, nil)
	net.Settle()
	if len(delivered) != 0 || len(dropped) != 1 {
		t.Fatalf("severed send: delivered=%v dropped=%v, want the drop path", delivered, dropped)
	}
	if c := net.Counter().Get("x"); c != 1 {
		t.Fatalf("severed send counted %d, want 1 (bytes hit the wire)", c)
	}

	net.SetLinkFilter(nil)
	if nbs := net.Neighbors(0); len(nbs) != 1 || nbs[0] != 1 {
		t.Fatalf("healed Neighbors(0) = %v, want [1]", nbs)
	}
	net.SendNew("x", 0, 1, 0, nil)
	net.Settle()
	if len(delivered) != 1 || len(dropped) != 1 {
		t.Fatalf("healed send: delivered=%v dropped=%v, want one delivery", delivered, dropped)
	}
}

func TestLinkFilterChannel(t *testing.T) {
	tr := NewChannelTransport(lineGraph(t, 3), 1, DefaultChannelConfig())
	defer tr.Close()
	var mu sync.Mutex
	var delivered, dropped int
	for id := 0; id < 3; id++ {
		tr.SetHandler(NodeID(id), func(*Message) {
			mu.Lock()
			delivered++
			mu.Unlock()
		})
	}
	tr.SetDrop(func(*Message) {
		mu.Lock()
		dropped++
		mu.Unlock()
	})

	tr.SetLinkFilter(cutAB(1, 2))
	if nbs := tr.Neighbors(1); len(nbs) != 1 || nbs[0] != 0 {
		t.Fatalf("Neighbors(1) = %v, want [0]", nbs)
	}
	tr.SendNew("x", 1, 2, 0, nil)
	tr.Settle()
	mu.Lock()
	d, dr := delivered, dropped
	mu.Unlock()
	if d != 0 || dr != 1 {
		t.Fatalf("severed send: delivered=%d dropped=%d, want the drop path", d, dr)
	}

	tr.SetLinkFilter(nil)
	tr.SendNew("x", 1, 2, 0, nil)
	tr.Settle()
	mu.Lock()
	d, dr = delivered, dropped
	mu.Unlock()
	if d != 1 || dr != 1 {
		t.Fatalf("healed send: delivered=%d dropped=%d, want one delivery", d, dr)
	}
	if c := tr.Counter().Get("x"); c != 2 {
		t.Fatalf("counted %d sends, want 2", c)
	}
}

func TestLinkFilterTCP(t *testing.T) {
	a, b := tcpPair(t, 2, 1)
	var mu sync.Mutex
	var delivered, dropped int
	b.SetHandler(1, func(*Message) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	a.SetDrop(func(*Message) {
		mu.Lock()
		dropped++
		mu.Unlock()
	})

	// Both processes install the same scripted cut, like a real drill.
	a.SetLinkFilter(cutAB(0, 1))
	b.SetLinkFilter(cutAB(0, 1))
	if nbs := a.Neighbors(0); len(nbs) != 0 {
		t.Fatalf("Neighbors(0) across the cut = %v, want none", nbs)
	}
	a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: 1, Text: "severed"})
	a.Settle()
	mu.Lock()
	d, dr := delivered, dropped
	mu.Unlock()
	if d != 0 || dr != 1 {
		t.Fatalf("severed send: delivered=%d dropped=%d, want the sender-side drop path", d, dr)
	}
	if c := a.Counter().Get("tcp-test"); c != 1 {
		t.Fatalf("severed send counted %d, want 1", c)
	}

	// Receiver-side cut only: the frame crosses the socket and is dropped
	// at delivery, echoing back to the sender's drop callback.
	a.SetLinkFilter(nil)
	a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: 2, Text: "receiver cut"})
	a.Settle()
	mu.Lock()
	d, dr = delivered, dropped
	mu.Unlock()
	if d != 0 || dr != 2 {
		t.Fatalf("receiver-side cut: delivered=%d dropped=%d, want a drop echo", d, dr)
	}

	// Heal: traffic flows again.
	b.SetLinkFilter(nil)
	a.SendNew("tcp-test", 0, 1, 0, tcpTestPayload{N: 3, Text: "healed"})
	a.Settle()
	mu.Lock()
	d, dr = delivered, dropped
	mu.Unlock()
	if d != 1 || dr != 2 {
		t.Fatalf("healed send: delivered=%d dropped=%d, want one delivery", d, dr)
	}
}
