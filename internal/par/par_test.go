package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachOrdering: results written at their job index are complete and
// ordered regardless of worker count, including the inline single-worker
// path and the workers > n clamp.
func TestForEachOrdering(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 2, 3, 8, n, n * 2} {
		out := make([]int, n)
		if err := ForEach(workers, n, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestForEachZeroWorkers: workers <= 0 falls back to one worker per CPU and
// still runs every job exactly once.
func TestForEachZeroWorkers(t *testing.T) {
	for _, workers := range []int{0, -1} {
		var ran atomic.Int64
		if err := ForEach(workers, 100, func(int) error {
			ran.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 100 {
			t.Fatalf("workers=%d: ran %d of 100 jobs", workers, ran.Load())
		}
	}
}

// TestForEachZeroJobs: n = 0 is a no-op for any worker count.
func TestForEachZeroJobs(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("ran") }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachLowestError: among the jobs that actually ran, the
// lowest-index error is the one returned, whatever the scheduling.
func TestForEachLowestError(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		var mu sync.Mutex
		errored := make(map[int]error)
		err := ForEach(4, 32, func(i int) error {
			if i%7 == 3 {
				e := fmt.Errorf("job %d failed", i)
				mu.Lock()
				errored[i] = e
				mu.Unlock()
				return e
			}
			return nil
		})
		lowest := -1
		for i := range errored {
			if lowest < 0 || i < lowest {
				lowest = i
			}
		}
		if lowest < 0 {
			t.Fatalf("trial %d: no job errored", trial)
		}
		if err != errored[lowest] {
			t.Fatalf("trial %d: err = %v, want lowest-index error %v", trial, err, errored[lowest])
		}
	}
}

// TestForEachErrorStopsDispatch: after a failure no new jobs are
// dispatched (jobs already running finish).
func TestForEachErrorStopsDispatch(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(2, 1000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got >= 1000 {
		t.Errorf("dispatch did not stop early: ran all %d jobs", got)
	}
}

// jobBoom is a structured panic value: propagation must preserve it so
// callers can still type-assert what they recover.
type jobBoom struct{ job int }

// TestForEachPanicPropagation: a panicking job must not crash the worker
// goroutine silently — the panic resurfaces on the calling goroutine with
// its original (type-assertable) value, identically on the inline and
// pooled paths.
func TestForEachPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				b, ok := r.(jobBoom)
				if !ok || b.job != 2 {
					t.Fatalf("workers=%d: recovered %#v, want the job's original jobBoom value", workers, r)
				}
			}()
			_ = ForEach(workers, 16, func(i int) error {
				if i == 2 {
					panic(jobBoom{job: i})
				}
				return nil
			})
		}()
	}
}

// TestForEachPanicEverywhere: with every job panicking, one panic value is
// re-raised — no panic is lost to a worker goroutine crash.
func TestForEachPanicEverywhere(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic propagated")
		}
		if _, ok := r.(jobBoom); !ok {
			t.Fatalf("recovered %#v, want a job's jobBoom value", r)
		}
	}()
	_ = ForEach(4, 16, func(i int) error { panic(jobBoom{job: i}) })
}
