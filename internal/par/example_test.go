package par_test

import (
	"errors"
	"fmt"

	"p2psum/internal/par"
)

// ForEach fans index-addressed jobs across a bounded worker pool; callers
// write into pre-sized slots so output order never depends on scheduling.
func ExampleForEach() {
	squares := make([]int, 6)
	err := par.ForEach(3, len(squares), func(i int) error {
		squares[i] = i * i
		return nil
	})
	fmt.Println(squares, err)
	// Output: [0 1 4 9 16 25] <nil>
}

// A failing job stops dispatch: no new jobs start after the error, and the
// lowest-index error among the jobs that ran is returned. (With several
// failing jobs, which of them ran first depends on scheduling — here a
// single failing job keeps the example deterministic.)
func ExampleForEach_error() {
	err := par.ForEach(4, 8, func(i int) error {
		if i == 2 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	fmt.Println(errors.Unwrap(err) == nil, err)
	// Output: true job 2 failed
}
