// Package par is the tiny worker-pool primitive shared by the experiment
// sweeps and the CLI replica harness: fan n index-addressed jobs across a
// bounded set of goroutines.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0..n-1) on at most `workers` goroutines and returns the
// lowest-index error among the jobs that ran (deterministic regardless of
// scheduling). workers <= 0 uses one worker per CPU; a single worker runs
// inline. Like the sequential path, a failure stops the sweep early: no
// new jobs are dispatched after the first error (jobs already running
// finish). Callers write results into index i of a pre-sized slice, so
// output order never depends on scheduling.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
