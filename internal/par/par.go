// Package par is the tiny worker-pool primitive shared by the experiment
// sweeps, the CLI replica harness and the sharded summary store: fan n
// index-addressed jobs across a bounded set of goroutines.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// panicValue wraps a recovered panic so it can be re-raised in the caller.
type panicValue struct {
	val any
}

// ForEach runs fn(0..n-1) on at most `workers` goroutines and returns the
// lowest-index error among the jobs that ran (deterministic regardless of
// scheduling). workers <= 0 uses one worker per CPU; a single worker runs
// inline. Like the sequential path, a failure stops the sweep early: no
// new jobs are dispatched after the first error (jobs already running
// finish). Callers write results into index i of a pre-sized slice, so
// output order never depends on scheduling.
//
// A panicking job does not crash its worker goroutine: the panic is
// captured and re-raised on the calling goroutine with its original value
// (so recover() can still type-assert it, exactly as on the inline
// single-worker path) once every in-flight job has finished, again picking
// the lowest-index panic for determinism. A panic also stops dispatch,
// like an error.
func ForEach(workers, n int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make([]error, n)
	panics := make([]*panicValue, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = &panicValue{val: r}
				failed.Store(true)
			}
		}()
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue
				}
				run(i)
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(panics[i].val)
		}
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}
