package data

import (
	"fmt"
	"math/rand"
)

// PatientSchema returns the schema of the paper's Patient relation
// (Table 1): age, sex, BMI and disease.
func PatientSchema() *Schema {
	return MustSchema(
		Attribute{Name: "age", Kind: Numeric},
		Attribute{Name: "sex", Kind: Categorical},
		Attribute{Name: "bmi", Kind: Numeric},
		Attribute{Name: "disease", Kind: Categorical},
	)
}

// PaperPatients returns the exact three-tuple Patient relation of Table 1.
func PaperPatients() *Relation {
	rel := NewRelation("Patient", PatientSchema())
	rel.MustInsert(Record{ID: "t1", Values: []Value{NumValue(15), StrValue("female"), NumValue(17), StrValue("anorexia")}})
	rel.MustInsert(Record{ID: "t2", Values: []Value{NumValue(20), StrValue("male"), NumValue(20), StrValue("malaria")}})
	rel.MustInsert(Record{ID: "t3", Values: []Value{NumValue(18), StrValue("female"), NumValue(16.5), StrValue("anorexia")}})
	return rel
}

// Diseases is the closed disease vocabulary used by the synthetic generator
// and by the medical Common Background Knowledge. It stands in for the
// SNOMED CT terminology the paper cites: the protocols only require a fixed
// shared vocabulary, not a full ontology.
var Diseases = []string{
	"anorexia", "malaria", "diabetes", "influenza", "tuberculosis",
	"asthma", "hepatitis", "hypertension", "measles", "cholera",
}

// Sexes is the closed sex vocabulary of the Patient relation.
var Sexes = []string{"female", "male"}

// PatientProfile describes one disease's patient population so that the
// synthetic data has the content-dependent structure summaries exploit
// ("dead Malaria patients are typically children and old").
type PatientProfile struct {
	Disease   string
	AgeMean   float64
	AgeStd    float64
	BMIMean   float64
	BMIStd    float64
	FemalePct float64
}

// DefaultProfiles gives each disease a distinct demographic signature.
func DefaultProfiles() []PatientProfile {
	return []PatientProfile{
		{"anorexia", 17, 3, 16.5, 1.2, 0.85},
		{"malaria", 30, 22, 21, 2.5, 0.50},
		{"diabetes", 58, 12, 29, 3.5, 0.45},
		{"influenza", 35, 20, 23, 3.0, 0.50},
		{"tuberculosis", 45, 15, 19, 2.0, 0.40},
		{"asthma", 25, 18, 22, 3.0, 0.50},
		{"hepatitis", 40, 14, 23, 2.8, 0.45},
		{"hypertension", 62, 10, 28, 3.2, 0.48},
		{"measles", 8, 5, 17, 2.0, 0.50},
		{"cholera", 33, 19, 20, 2.2, 0.50},
	}
}

// PatientGenerator produces deterministic synthetic Patient relations. It is
// the stand-in for the real collaborative medical databases the paper
// motivates but does not publish.
type PatientGenerator struct {
	rng      *rand.Rand
	profiles []PatientProfile
	serial   int
}

// NewPatientGenerator seeds a generator. Profiles default to
// DefaultProfiles when nil.
func NewPatientGenerator(seed int64, profiles []PatientProfile) *PatientGenerator {
	if profiles == nil {
		profiles = DefaultProfiles()
	}
	return &PatientGenerator{rng: rand.New(rand.NewSource(seed)), profiles: profiles}
}

// Generate produces a relation of n patients drawn from the profiles.
func (g *PatientGenerator) Generate(name string, n int) *Relation {
	rel := NewRelation(name, PatientSchema())
	for i := 0; i < n; i++ {
		rel.MustInsert(g.Next())
	}
	return rel
}

// GenerateBiased produces a relation in which the given disease accounts for
// the bias fraction of tuples, modelling interest-based data clustering
// across peers (the paper's group-locality assumption).
func (g *PatientGenerator) GenerateBiased(name string, n int, disease string, bias float64) *Relation {
	rel := NewRelation(name, PatientSchema())
	var prof *PatientProfile
	for i := range g.profiles {
		if g.profiles[i].Disease == disease {
			prof = &g.profiles[i]
			break
		}
	}
	for i := 0; i < n; i++ {
		if prof != nil && g.rng.Float64() < bias {
			rel.MustInsert(g.fromProfile(*prof))
		} else {
			rel.MustInsert(g.Next())
		}
	}
	return rel
}

// Next draws one synthetic patient.
func (g *PatientGenerator) Next() Record {
	prof := g.profiles[g.rng.Intn(len(g.profiles))]
	return g.fromProfile(prof)
}

func (g *PatientGenerator) fromProfile(p PatientProfile) Record {
	g.serial++
	age := clamp(g.rng.NormFloat64()*p.AgeStd+p.AgeMean, 0, 105)
	bmi := clamp(g.rng.NormFloat64()*p.BMIStd+p.BMIMean, 10, 60)
	sex := "male"
	if g.rng.Float64() < p.FemalePct {
		sex = "female"
	}
	return Record{
		ID: fmt.Sprintf("t%d", g.serial),
		Values: []Value{
			NumValue(round1(age)),
			StrValue(sex),
			NumValue(round1(bmi)),
			StrValue(p.Disease),
		},
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func round1(x float64) float64 {
	return float64(int(x*10+0.5)) / 10
}
