// Package data provides the relational substrate the summarization engine
// consumes: typed schemas, tuples, in-memory relations and CSV interchange.
// It also ships a deterministic synthetic generator for the paper's running
// medical example (the Patient relation of Table 1).
package data

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Kind is the type of an attribute.
type Kind int

const (
	// Numeric attributes hold float64 values and are summarized through
	// fuzzy linguistic variables.
	Numeric Kind = iota
	// Categorical attributes hold string values and are summarized through
	// crisp (possibly hierarchical) vocabularies.
	Categorical
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Attribute is one column of a schema.
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes with unique names.
type Schema struct {
	attrs  []Attribute
	byName map[string]int
}

// NewSchema validates attribute names and builds a schema.
func NewSchema(attrs ...Attribute) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, errors.New("data: schema has no attributes")
	}
	s := &Schema{attrs: make([]Attribute, len(attrs)), byName: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("data: attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("data: duplicate attribute %q", a.Name)
		}
		s.byName[a.Name] = i
		s.attrs[i] = a
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) *Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns the attributes in order. Callers must not mutate the slice.
func (s *Schema) Attrs() []Attribute { return s.attrs }

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		out[i] = a.Name
	}
	return out
}

// Value is a single attribute value of a tuple: a float for numeric
// attributes, a string for categorical ones.
type Value struct {
	Num float64
	Str string
}

// NumValue wraps a numeric value.
func NumValue(x float64) Value { return Value{Num: x} }

// StrValue wraps a categorical value.
func StrValue(s string) Value { return Value{Str: s} }

// Record is one tuple, positionally aligned with its schema.
type Record struct {
	ID     string
	Values []Value
}

// Relation is an in-memory table.
type Relation struct {
	name    string
	schema  *Schema
	records []Record
}

// NewRelation creates an empty relation over the schema.
func NewRelation(name string, schema *Schema) *Relation {
	return &Relation{name: name, schema: schema}
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.records) }

// Records returns the tuples in insertion order. Callers must not mutate.
func (r *Relation) Records() []Record { return r.records }

// Record returns the i-th tuple.
func (r *Relation) Record(i int) Record { return r.records[i] }

// Insert validates arity and appends a tuple.
func (r *Relation) Insert(rec Record) error {
	if len(rec.Values) != r.schema.Len() {
		return fmt.Errorf("data: relation %s: record %q has %d values, schema has %d",
			r.name, rec.ID, len(rec.Values), r.schema.Len())
	}
	r.records = append(r.records, rec)
	return nil
}

// MustInsert is Insert that panics on error; for literals in tests/examples.
func (r *Relation) MustInsert(rec Record) {
	if err := r.Insert(rec); err != nil {
		panic(err)
	}
}

// Num returns the numeric value of attribute attr in record rec.
func (r *Relation) Num(rec Record, attr string) (float64, error) {
	i := r.schema.Index(attr)
	if i < 0 {
		return 0, fmt.Errorf("data: unknown attribute %q", attr)
	}
	if r.schema.Attr(i).Kind != Numeric {
		return 0, fmt.Errorf("data: attribute %q is not numeric", attr)
	}
	return rec.Values[i].Num, nil
}

// Str returns the categorical value of attribute attr in record rec.
func (r *Relation) Str(rec Record, attr string) (string, error) {
	i := r.schema.Index(attr)
	if i < 0 {
		return "", fmt.Errorf("data: unknown attribute %q", attr)
	}
	if r.schema.Attr(i).Kind != Categorical {
		return "", fmt.Errorf("data: attribute %q is not categorical", attr)
	}
	return rec.Values[i].Str, nil
}

// String renders the relation as a compact text table (used by examples to
// print the paper's Table 1).
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%d tuples)\n", r.name, len(r.records))
	b.WriteString("Id")
	for _, a := range r.schema.attrs {
		b.WriteString("\t" + a.Name)
	}
	b.WriteString("\n")
	for _, rec := range r.records {
		b.WriteString(rec.ID)
		for i, v := range rec.Values {
			if r.schema.attrs[i].Kind == Numeric {
				fmt.Fprintf(&b, "\t%s", strconv.FormatFloat(v.Num, 'f', -1, 64))
			} else {
				fmt.Fprintf(&b, "\t%s", v.Str)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// WriteCSV serializes the relation with a header row ("id" then attributes).
func (r *Relation) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"id"}, r.schema.Names()...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("data: write csv header: %w", err)
	}
	row := make([]string, 1+r.schema.Len())
	for _, rec := range r.records {
		row[0] = rec.ID
		for i, v := range rec.Values {
			if r.schema.attrs[i].Kind == Numeric {
				row[1+i] = strconv.FormatFloat(v.Num, 'f', -1, 64)
			} else {
				row[1+i] = v.Str
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("data: write csv row %s: %w", rec.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation written by WriteCSV (or any CSV whose first
// column is an id and whose remaining columns match the schema order).
func ReadCSV(name string, schema *Schema, rd io.Reader) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: read csv header: %w", err)
	}
	if len(header) != 1+schema.Len() {
		return nil, fmt.Errorf("data: csv has %d columns, schema wants %d", len(header), 1+schema.Len())
	}
	rel := NewRelation(name, schema)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: read csv line %d: %w", line, err)
		}
		rec := Record{ID: row[0], Values: make([]Value, schema.Len())}
		for i := 0; i < schema.Len(); i++ {
			cell := row[1+i]
			if schema.Attr(i).Kind == Numeric {
				x, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("data: csv line %d, attribute %q: %w", line, schema.Attr(i).Name, err)
				}
				rec.Values[i] = NumValue(x)
			} else {
				rec.Values[i] = StrValue(cell)
			}
		}
		rel.records = append(rel.records, rec)
	}
	return rel, nil
}

// DistinctStr returns the sorted distinct values of a categorical attribute.
func (r *Relation) DistinctStr(attr string) ([]string, error) {
	i := r.schema.Index(attr)
	if i < 0 {
		return nil, fmt.Errorf("data: unknown attribute %q", attr)
	}
	if r.schema.Attr(i).Kind != Categorical {
		return nil, fmt.Errorf("data: attribute %q is not categorical", attr)
	}
	seen := make(map[string]bool)
	for _, rec := range r.records {
		seen[rec.Values[i].Str] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out, nil
}
