package data

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s := PatientSchema()
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Index("bmi") != 2 || s.Index("nope") != -1 {
		t.Errorf("Index lookups wrong")
	}
	if got := s.Names(); strings.Join(got, ",") != "age,sex,bmi,disease" {
		t.Errorf("Names = %v", got)
	}
	if s.Attr(0).Kind != Numeric || s.Attr(1).Kind != Categorical {
		t.Errorf("attribute kinds wrong")
	}
	if Numeric.String() != "numeric" || Categorical.String() != "categorical" {
		t.Errorf("Kind.String wrong")
	}
	if Kind(42).String() == "" {
		t.Errorf("unknown kind renders empty")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema(Attribute{Name: ""}); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewSchema(Attribute{Name: "a"}, Attribute{Name: "a"}); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic")
		}
	}()
	MustSchema()
}

func TestPaperPatients(t *testing.T) {
	rel := PaperPatients()
	if rel.Len() != 3 {
		t.Fatalf("Len = %d, want 3", rel.Len())
	}
	age, err := rel.Num(rel.Record(1), "age")
	if err != nil || age != 20 {
		t.Errorf("t2.age = %g (%v), want 20", age, err)
	}
	dis, err := rel.Str(rel.Record(0), "disease")
	if err != nil || dis != "anorexia" {
		t.Errorf("t1.disease = %q (%v), want anorexia", dis, err)
	}
	if _, err := rel.Num(rel.Record(0), "sex"); err == nil {
		t.Error("Num on categorical attribute accepted")
	}
	if _, err := rel.Str(rel.Record(0), "age"); err == nil {
		t.Error("Str on numeric attribute accepted")
	}
	if _, err := rel.Num(rel.Record(0), "ghost"); err == nil {
		t.Error("Num on unknown attribute accepted")
	}
	if _, err := rel.Str(rel.Record(0), "ghost"); err == nil {
		t.Error("Str on unknown attribute accepted")
	}
	if !strings.Contains(rel.String(), "anorexia") {
		t.Error("String() misses tuple content")
	}
}

func TestInsertArity(t *testing.T) {
	rel := NewRelation("r", PatientSchema())
	err := rel.Insert(Record{ID: "x", Values: []Value{NumValue(1)}})
	if err == nil {
		t.Error("arity mismatch accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustInsert did not panic")
		}
	}()
	rel.MustInsert(Record{ID: "x", Values: []Value{NumValue(1)}})
}

func TestCSVRoundTrip(t *testing.T) {
	rel := PaperPatients()
	var buf bytes.Buffer
	if err := rel.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("Patient", PatientSchema(), &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if back.Len() != rel.Len() {
		t.Fatalf("round trip lost tuples: %d != %d", back.Len(), rel.Len())
	}
	for i := range rel.Records() {
		a, b := rel.Record(i), back.Record(i)
		if a.ID != b.ID {
			t.Errorf("record %d id %q != %q", i, a.ID, b.ID)
		}
		for j := range a.Values {
			if a.Values[j] != b.Values[j] {
				t.Errorf("record %d value %d: %v != %v", i, j, a.Values[j], b.Values[j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := PatientSchema()
	if _, err := ReadCSV("r", s, strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV("r", s, strings.NewReader("id,age\nx,1\n")); err == nil {
		t.Error("column mismatch accepted")
	}
	bad := "id,age,sex,bmi,disease\nx,notanumber,female,17,anorexia\n"
	if _, err := ReadCSV("r", s, strings.NewReader(bad)); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestDistinctStr(t *testing.T) {
	rel := PaperPatients()
	got, err := rel.DistinctStr("disease")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "anorexia" || got[1] != "malaria" {
		t.Errorf("DistinctStr(disease) = %v", got)
	}
	if _, err := rel.DistinctStr("age"); err == nil {
		t.Error("DistinctStr on numeric accepted")
	}
	if _, err := rel.DistinctStr("ghost"); err == nil {
		t.Error("DistinctStr on unknown accepted")
	}
}

func TestPatientGeneratorDeterminism(t *testing.T) {
	a := NewPatientGenerator(7, nil).Generate("a", 100)
	b := NewPatientGenerator(7, nil).Generate("b", 100)
	for i := 0; i < 100; i++ {
		ra, rb := a.Record(i), b.Record(i)
		for j := range ra.Values {
			if ra.Values[j] != rb.Values[j] {
				t.Fatalf("same seed diverged at record %d attr %d", i, j)
			}
		}
	}
	c := NewPatientGenerator(8, nil).Generate("c", 100)
	same := true
	for i := 0; i < 100 && same; i++ {
		for j := range a.Record(i).Values {
			if a.Record(i).Values[j] != c.Record(i).Values[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical relations")
	}
}

func TestPatientGeneratorRanges(t *testing.T) {
	rel := NewPatientGenerator(42, nil).Generate("r", 500)
	known := make(map[string]bool, len(Diseases))
	for _, d := range Diseases {
		known[d] = true
	}
	for _, rec := range rel.Records() {
		age, _ := rel.Num(rec, "age")
		bmi, _ := rel.Num(rec, "bmi")
		sex, _ := rel.Str(rec, "sex")
		dis, _ := rel.Str(rec, "disease")
		if age < 0 || age > 105 {
			t.Fatalf("age %g out of range", age)
		}
		if bmi < 10 || bmi > 60 {
			t.Fatalf("bmi %g out of range", bmi)
		}
		if sex != "female" && sex != "male" {
			t.Fatalf("sex %q unexpected", sex)
		}
		if !known[dis] {
			t.Fatalf("disease %q not in vocabulary", dis)
		}
	}
}

func TestGenerateBiased(t *testing.T) {
	g := NewPatientGenerator(1, nil)
	rel := g.GenerateBiased("r", 1000, "malaria", 0.8)
	count := 0
	for _, rec := range rel.Records() {
		if d, _ := rel.Str(rec, "disease"); d == "malaria" {
			count++
		}
	}
	// 80% biased draws plus ~1/10 of the unbiased remainder.
	if count < 700 || count > 950 {
		t.Errorf("malaria count = %d, want around 820", count)
	}
	// Unknown disease: bias silently ignored, still generates n records.
	rel2 := g.GenerateBiased("r2", 50, "unknownitis", 0.9)
	if rel2.Len() != 50 {
		t.Errorf("GenerateBiased with unknown disease produced %d records", rel2.Len())
	}
}

// Property: every generated record is schema-conformant and CSV round-trips.
func TestQuickGeneratorCSV(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%32) + 1
		rel := NewPatientGenerator(seed, nil).Generate("q", n)
		var buf bytes.Buffer
		if err := rel.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV("q", PatientSchema(), &buf)
		if err != nil || back.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			for j := range rel.Record(i).Values {
				if rel.Record(i).Values[j] != back.Record(i).Values[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
