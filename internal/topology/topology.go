// Package topology generates P2P overlay graphs, replacing the BRITE
// universal topology generator the paper's simulation uses (§6.2.1).
//
// The paper requires "a power law P2P network, with an average degree of 4";
// the Barabási–Albert preferential-attachment model is the canonical
// generator for that class (and the one BRITE implements). A Waxman
// generator is provided as an alternative flat random model, plus the graph
// metrics used to sanity-check generated overlays (degree statistics,
// connectivity, clustering).
package topology

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Graph is an undirected overlay with per-edge latencies. Latencies are
// stored positionally: lat[u][i] is the latency of the edge to adj[u][i],
// so a 100k-node graph costs two flat runs per node instead of a map
// entry per edge (the map dominated memory at that scale). Generators
// call Compact after construction to re-pack both runs into single
// backing arrays (CSR layout).
type Graph struct {
	n     int
	adj   [][]int
	lat   [][]float64
	edges int
}

// NewGraph creates an edgeless graph of n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n), lat: make([][]float64, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// Neighbors returns the adjacency list of node u; callers must not mutate.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge (u, v) with the given latency
// (seconds). Self-loops and duplicates are rejected.
func (g *Graph) AddEdge(u, v int, latency float64) error {
	if u == v {
		return fmt.Errorf("topology: self-loop at %d", u)
	}
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return fmt.Errorf("topology: edge (%d,%d) out of range", u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.lat[u] = append(g.lat[u], latency)
	g.lat[v] = append(g.lat[v], latency)
	g.edges++
	return nil
}

// Latency returns the latency of edge (u, v), or 0 when absent.
func (g *Graph) Latency(u, v int) float64 {
	l, _ := g.LatencyOK(u, v)
	return l
}

// LatencyAt returns the latency of the i-th edge in u's adjacency run
// (positional companion to Neighbors, no scan).
func (g *Graph) LatencyAt(u, i int) float64 { return g.lat[u][i] }

// LatencyOK returns the latency of edge (u, v) and whether the edge
// exists — one adjacency scan for the existence check and the lookup,
// where HasEdge+Latency would scan twice.
func (g *Graph) LatencyOK(u, v int) (float64, bool) {
	for i, w := range g.adj[u] {
		if w == v {
			return g.lat[u][i], true
		}
	}
	return 0, false
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int { return g.edges }

// AvgDegree returns the mean node degree (2E/N).
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(g.n)
}

// Compact re-packs every adjacency and latency run into one flat backing
// array each (CSR layout): per-node slices become exact-length windows
// into the shared arrays, eliminating the per-node append slack and
// allocator headers that dominate memory on 100k-node graphs. Full-cap
// subslicing keeps a later AddEdge safe — appending to a window
// reallocates that node's run instead of clobbering its neighbor's.
func (g *Graph) Compact() {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	flatA := make([]int, 0, total)
	flatL := make([]float64, 0, total)
	for u := range g.adj {
		start := len(flatA)
		flatA = append(flatA, g.adj[u]...)
		flatL = append(flatL, g.lat[u]...)
		end := len(flatA)
		g.adj[u] = flatA[start:end:end]
		g.lat[u] = flatL[start:end:end]
	}
}

// RegionLatencyBounds computes, for a node→region partition, each
// region's cheapest cross-region link in each direction: out[r] is the
// minimum latency over edges leaving region r, in[r] over edges entering
// it — +Inf for a region with no cross-region edges (callers cap with
// their off-graph direct-send latency). One positional sweep over the
// CSR adjacency/latency runs; both directions of every undirected edge
// are visited, so out and in see each crossing once per orientation. The
// sharded simulation kernel uses these as its per-region
// earliest-output/earliest-input bounds for dynamic windows and
// speculative overrun.
func RegionLatencyBounds(g *Graph, part []int, regions int) (out, in []float64) {
	out = make([]float64, regions)
	in = make([]float64, regions)
	for r := 0; r < regions; r++ {
		out[r] = math.Inf(1)
		in[r] = math.Inf(1)
	}
	for u := 0; u < g.n; u++ {
		pu := part[u]
		adj := g.adj[u]
		lat := g.lat[u]
		for i, v := range adj {
			pv := part[v]
			if pv == pu {
				continue
			}
			if l := lat[i]; l < out[pu] {
				out[pu] = l
			}
			if l := lat[i]; l < in[pv] {
				in[pv] = l
			}
		}
	}
	return out, in
}

// MaxDegree returns the largest node degree.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Connected reports whether the graph is a single component.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// BFSWithin returns the set of nodes reachable from src within the given
// number of hops (src included at distance 0). It backs the TTL-bounded
// flooding baselines.
func (g *Graph) BFSWithin(src, hops int) map[int]int {
	dist := map[int]int{src: 0}
	frontier := []int{src}
	for h := 0; h < hops && len(frontier) > 0; h++ {
		var next []int
		for _, u := range frontier {
			for _, v := range g.adj[u] {
				if _, ok := dist[v]; !ok {
					dist[v] = h + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}

// DisjointStars builds `clusters` disconnected star components of `size`
// nodes each (one hub plus size-1 spokes, every spoke adjacent only to its
// hub) with the given uniform edge latency, returning the graph and the
// hub ids. Unlike the generators above it is deliberately NOT connected:
// the components model fully independent summary domains, which makes
// protocol runs on the concurrent transport deterministic (no cross-domain
// message races) — the fixture behind the dispatcher-sharding equivalence
// tests, benchmarks and the concurrency experiment.
func DisjointStars(clusters, size int, latency float64) (*Graph, []int) {
	if clusters < 1 || size < 2 {
		panic(fmt.Sprintf("topology: DisjointStars needs clusters >= 1 and size >= 2, got %d, %d", clusters, size))
	}
	g := NewGraph(clusters * size)
	hubs := make([]int, clusters)
	for c := 0; c < clusters; c++ {
		hub := c * size
		hubs[c] = hub
		for s := 1; s < size; s++ {
			if err := g.AddEdge(hub, hub+s, latency); err != nil {
				panic(err) // unreachable: construction is duplicate-free
			}
		}
	}
	g.Compact()
	return g, hubs
}

// NearestSeeds partitions the nodes by hop distance to a set of seed
// nodes: out[v] is the index (into seeds) of the seed closest to v, with
// ties broken on the lower seed index, or -1 when no seed reaches v. One
// multi-source BFS, O(V+E). It is the partition the sharded channel
// transport uses to map summary-management domains onto dispatch groups:
// seeds are the elected summary peers, and every node lands in the group
// of the summary peer whose broadcast reaches it first.
func NearestSeeds(g *Graph, seeds []int) []int {
	out := make([]int, g.n)
	for i := range out {
		out[i] = -1
	}
	var frontier []int
	for idx, s := range seeds {
		if s < 0 || s >= g.n || out[s] >= 0 {
			continue // out of range or duplicate seed: first index wins
		}
		out[s] = idx
		frontier = append(frontier, s)
	}
	// Level-synchronous BFS; within a level the frontier keeps seed-index
	// order, so the first seed to reach a node is the lowest-indexed one
	// among the equidistant seeds.
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			for _, v := range g.adj[u] {
				if out[v] < 0 {
					out[v] = out[u]
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return out
}

// ClusteringCoefficient returns the average local clustering coefficient, a
// small-world indicator (§5.2.2 cites small-world features of P2P graphs).
func (g *Graph) ClusteringCoefficient() float64 {
	total, counted := 0.0, 0
	for u := 0; u < g.n; u++ {
		d := len(g.adj[u])
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(g.adj[u][i], g.adj[u][j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// DegreeHistogram returns degree -> node count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, a := range g.adj {
		h[len(a)]++
	}
	return h
}

// LatencyModel draws per-edge latencies.
type LatencyModel func(rng *rand.Rand) float64

// UniformLatency draws uniformly from [lo, hi] seconds.
func UniformLatency(lo, hi float64) LatencyModel {
	return func(rng *rand.Rand) float64 { return lo + rng.Float64()*(hi-lo) }
}

// DefaultLatency is a 10–200 ms uniform WAN latency model.
func DefaultLatency() LatencyModel { return UniformLatency(0.010, 0.200) }

// BarabasiAlbert generates a power-law graph by preferential attachment:
// every new node attaches m edges to existing nodes with probability
// proportional to their degree. m=2 yields the paper's average degree ≈ 4.
func BarabasiAlbert(n, m int, lat LatencyModel, rng *rand.Rand) (*Graph, error) {
	if m < 1 {
		return nil, errors.New("topology: m must be >= 1")
	}
	if n < m+1 {
		return nil, fmt.Errorf("topology: need n >= m+1, got n=%d m=%d", n, m)
	}
	if lat == nil {
		lat = DefaultLatency()
	}
	g := NewGraph(n)
	// Seed clique over the first m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			if err := g.AddEdge(u, v, lat(rng)); err != nil {
				return nil, err
			}
		}
	}
	// Repeated-node list: each node appears once per incident edge, so
	// sampling uniformly from it is degree-proportional sampling.
	var targets []int
	for u := 0; u <= m; u++ {
		for range g.adj[u] {
			targets = append(targets, u)
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := make(map[int]bool, m)
		for len(chosen) < m {
			v := targets[rng.Intn(len(targets))]
			if v != u && !chosen[v] {
				chosen[v] = true
			}
		}
		picks := make([]int, 0, m)
		for v := range chosen {
			picks = append(picks, v)
		}
		sort.Ints(picks) // map order is random; keep runs reproducible
		for _, v := range picks {
			if err := g.AddEdge(u, v, lat(rng)); err != nil {
				return nil, err
			}
			targets = append(targets, u, v)
		}
	}
	g.Compact()
	return g, nil
}

// Waxman generates the classic BRITE flat random topology: nodes are placed
// on a unit square and edges appear with probability
// alpha * exp(-d / (beta * L)) where d is Euclidean distance and L the
// diagonal. A spanning pass guarantees connectivity.
func Waxman(n int, alpha, beta float64, lat LatencyModel, rng *rand.Rand) (*Graph, error) {
	if n < 2 {
		return nil, errors.New("topology: waxman needs n >= 2")
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 {
		return nil, fmt.Errorf("topology: invalid waxman parameters alpha=%g beta=%g", alpha, beta)
	}
	if lat == nil {
		lat = DefaultLatency()
	}
	type pt struct{ x, y float64 }
	pts := make([]pt, n)
	for i := range pts {
		pts[i] = pt{rng.Float64(), rng.Float64()}
	}
	l := math.Sqrt2
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := math.Hypot(pts[u].x-pts[v].x, pts[u].y-pts[v].y)
			if rng.Float64() < alpha*math.Exp(-d/(beta*l)) {
				if err := g.AddEdge(u, v, lat(rng)); err != nil {
					return nil, err
				}
			}
		}
	}
	// Stitch components onto node 0's component to guarantee connectivity.
	comp := components(g)
	for c := 1; c < len(comp); c++ {
		u := comp[c][rng.Intn(len(comp[c]))]
		v := comp[0][rng.Intn(len(comp[0]))]
		if err := g.AddEdge(u, v, lat(rng)); err != nil {
			return nil, err
		}
	}
	g.Compact()
	return g, nil
}

func components(g *Graph) [][]int {
	seen := make([]bool, g.n)
	var out [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		var comp []int
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// PowerLawExponentEstimate fits the tail exponent of the degree
// distribution by the Hill maximum-likelihood estimator over degrees >=
// kmin. BA graphs should report an exponent near 3.
func (g *Graph) PowerLawExponentEstimate(kmin int) float64 {
	var sum float64
	n := 0
	for _, a := range g.adj {
		k := len(a)
		if k >= kmin {
			sum += math.Log(float64(k) / float64(kmin))
			n++
		}
	}
	if n == 0 || sum == 0 {
		return 0
	}
	return 1 + float64(n)/sum
}

// WattsStrogatz generates the classic small-world model: a ring lattice of
// degree k (even) whose edges are rewired with probability beta. The paper
// leans on small-world features of real P2P graphs ("the existing P2P
// networks have small-world features", §5.2.2); this generator provides a
// controlled way to study them next to the BA model.
func WattsStrogatz(n, k int, beta float64, lat LatencyModel, rng *rand.Rand) (*Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: watts-strogatz needs even k >= 2, got %d", k)
	}
	if n <= k {
		return nil, fmt.Errorf("topology: need n > k, got n=%d k=%d", n, k)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("topology: beta %g out of [0,1]", beta)
	}
	if lat == nil {
		lat = DefaultLatency()
	}
	g := NewGraph(n)
	// Ring lattice: each node connects to its k/2 clockwise neighbors.
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if err := g.AddEdge(u, v, lat(rng)); err != nil {
				return nil, err
			}
		}
	}
	// Rewire each clockwise edge with probability beta.
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if rng.Float64() >= beta {
				continue
			}
			// Pick a new target avoiding self-loops and duplicates.
			for attempt := 0; attempt < 32; attempt++ {
				w := rng.Intn(n)
				if w == u || g.HasEdge(u, w) {
					continue
				}
				g.removeEdge(u, v)
				if err := g.AddEdge(u, w, lat(rng)); err == nil {
					break
				}
				// Extremely unlikely; restore the original edge.
				if err := g.AddEdge(u, v, lat(rng)); err != nil {
					return nil, err
				}
				break
			}
		}
	}
	// Guarantee connectivity the same way the Waxman generator does.
	comp := components(g)
	for c := 1; c < len(comp); c++ {
		u := comp[c][rng.Intn(len(comp[c]))]
		v := comp[0][rng.Intn(len(comp[0]))]
		if g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v, lat(rng)); err != nil {
			return nil, err
		}
	}
	g.Compact()
	return g, nil
}

// removeEdge deletes an undirected edge (no-op when absent).
func (g *Graph) removeEdge(u, v int) {
	if !g.HasEdge(u, v) {
		return
	}
	g.removeHalf(u, v)
	g.removeHalf(v, u)
	g.edges--
}

// removeHalf drops v from u's adjacency and latency runs in lockstep.
func (g *Graph) removeHalf(u, v int) {
	for i, w := range g.adj[u] {
		if w == v {
			g.adj[u] = append(g.adj[u][:i], g.adj[u][i+1:]...)
			g.lat[u] = append(g.lat[u][:i], g.lat[u][i+1:]...)
			return
		}
	}
}

// AvgPathLengthSample estimates the average shortest-path length by BFS
// from a sample of sources (a small-world indicator next to clustering).
func (g *Graph) AvgPathLengthSample(samples int, rng *rand.Rand) float64 {
	if g.n < 2 || samples < 1 {
		return 0
	}
	var sum, count float64
	for s := 0; s < samples; s++ {
		src := rng.Intn(g.n)
		for _, d := range g.BFSWithin(src, g.n) {
			if d > 0 {
				sum += float64(d)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / count
}
