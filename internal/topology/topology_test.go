package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddEdge(0, 1, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 0.07); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 || g.EdgeCount() != 2 {
		t.Errorf("shape wrong: n=%d e=%d", g.Len(), g.EdgeCount())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("Degree wrong")
	}
	if g.Latency(0, 1) != 0.05 || g.Latency(1, 0) != 0.05 {
		t.Error("Latency not symmetric")
	}
	if g.Latency(0, 3) != 0 {
		t.Error("absent edge latency nonzero")
	}
	if g.AvgDegree() != 1 {
		t.Errorf("AvgDegree = %g", g.AvgDegree())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range accepted")
	}
	if err := g.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative accepted")
	}
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 0, 1); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestConnectedAndComponents(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 1)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
	if !NewGraph(0).Connected() {
		t.Error("empty graph should be connected")
	}
}

func TestBFSWithin(t *testing.T) {
	// Path 0-1-2-3-4.
	g := NewGraph(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	d := g.BFSWithin(0, 2)
	if len(d) != 3 {
		t.Errorf("BFSWithin(0,2) = %v", d)
	}
	if d[2] != 2 {
		t.Errorf("dist[2] = %d", d[2])
	}
	if _, ok := d[3]; ok {
		t.Error("node 3 reached within 2 hops")
	}
	d0 := g.BFSWithin(4, 0)
	if len(d0) != 1 || d0[4] != 0 {
		t.Errorf("BFSWithin(4,0) = %v", d0)
	}
}

func TestBarabasiAlbertProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := BarabasiAlbert(2000, 2, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("BA graph not connected")
	}
	// Average degree ~ 2m = 4 (slightly above due to the seed clique).
	if d := g.AvgDegree(); d < 3.5 || d > 4.5 {
		t.Errorf("avg degree = %g, want ~4", d)
	}
	// Heavy tail: the hubs should be far above the mean.
	if g.MaxDegree() < 20 {
		t.Errorf("max degree = %d; no hubs in a BA graph?", g.MaxDegree())
	}
	// Power-law exponent near 3.
	if gamma := g.PowerLawExponentEstimate(4); gamma < 2 || gamma > 4.5 {
		t.Errorf("estimated exponent = %g, want ~3", gamma)
	}
	// Latencies drawn from the default model are in [10ms, 200ms].
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Neighbors(u) {
			if l := g.Latency(u, v); l < 0.010 || l > 0.200 {
				t.Fatalf("latency %g out of default range", l)
			}
		}
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BarabasiAlbert(3, 0, nil, rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(2, 2, nil, rng); err == nil {
		t.Error("n<m+1 accepted")
	}
}

func TestBarabasiAlbertDeterminism(t *testing.T) {
	a, err := BarabasiAlbert(300, 2, nil, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(300, 2, nil, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 300; u++ {
		if len(a.Neighbors(u)) != len(b.Neighbors(u)) {
			t.Fatalf("node %d degree differs across same-seed runs", u)
		}
	}
}

func TestWaxman(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := Waxman(400, 0.2, 0.15, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("waxman graph not connected (spanning pass failed)")
	}
	if g.AvgDegree() < 1 {
		t.Errorf("waxman avg degree = %g, suspiciously sparse", g.AvgDegree())
	}
	if _, err := Waxman(1, 0.2, 0.15, nil, rng); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Waxman(10, 0, 0.15, nil, rng); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Waxman(10, 0.5, -1, nil, rng); err == nil {
		t.Error("beta<0 accepted")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: clustering 1.
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	if c := g.ClusteringCoefficient(); c != 1 {
		t.Errorf("triangle clustering = %g", c)
	}
	// Star: clustering 0.
	s := NewGraph(4)
	s.AddEdge(0, 1, 1)
	s.AddEdge(0, 2, 1)
	s.AddEdge(0, 3, 1)
	if c := s.ClusteringCoefficient(); c != 0 {
		t.Errorf("star clustering = %g", c)
	}
	if c := NewGraph(2).ClusteringCoefficient(); c != 0 {
		t.Errorf("edgeless clustering = %g", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	h := g.DegreeHistogram()
	if h[0] != 1 || h[1] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestUniformLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := UniformLatency(1, 2)
	for i := 0; i < 100; i++ {
		if l := m(rng); l < 1 || l > 2 {
			t.Fatalf("latency %g out of [1,2]", l)
		}
	}
}

// Property: BA graphs of any admissible size are connected with average
// degree close to 2m.
func TestQuickBAConnected(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 10
		g, err := BarabasiAlbert(n, 2, nil, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return g.Connected() && g.AvgDegree() >= 3 && g.AvgDegree() <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: every edge is symmetric in the adjacency lists.
func TestQuickEdgeSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		g, err := BarabasiAlbert(200, 3, nil, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for u := 0; u < g.Len(); u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := WattsStrogatz(500, 4, 0.1, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("WS graph not connected")
	}
	if d := g.AvgDegree(); d < 3.5 || d > 4.5 {
		t.Errorf("avg degree = %g, want ~4", d)
	}
	// Small-world: much higher clustering than a BA graph of same size,
	// with comparable path lengths.
	ba, err := BarabasiAlbert(500, 2, nil, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if g.ClusteringCoefficient() <= ba.ClusteringCoefficient() {
		t.Errorf("WS clustering (%g) not above BA (%g)",
			g.ClusteringCoefficient(), ba.ClusteringCoefficient())
	}
	if apl := g.AvgPathLengthSample(10, rng); apl <= 1 || apl > 20 {
		t.Errorf("WS avg path length = %g, not small-world", apl)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := WattsStrogatz(10, 3, 0.1, nil, rng); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := WattsStrogatz(4, 4, 0.1, nil, rng); err == nil {
		t.Error("n <= k accepted")
	}
	if _, err := WattsStrogatz(10, 4, 1.5, nil, rng); err == nil {
		t.Error("beta > 1 accepted")
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0: the pure ring lattice, fully regular.
	g, err := WattsStrogatz(20, 4, 0, nil, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("lattice degree(%d) = %d, want 4", u, g.Degree(u))
		}
	}
	// Lattice clustering for k=4 is exactly 0.5.
	if c := g.ClusteringCoefficient(); c < 0.45 || c > 0.55 {
		t.Errorf("lattice clustering = %g, want 0.5", c)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1)
	g.removeEdge(0, 1)
	if g.HasEdge(0, 1) || g.EdgeCount() != 0 {
		t.Error("removeEdge failed")
	}
	g.removeEdge(0, 1) // absent: no-op
	if g.EdgeCount() != 0 {
		t.Error("double remove corrupted graph")
	}
}

func TestAvgPathLengthEdgeCases(t *testing.T) {
	if NewGraph(1).AvgPathLengthSample(3, rand.New(rand.NewSource(1))) != 0 {
		t.Error("single node path length nonzero")
	}
}

func TestNearestSeeds(t *testing.T) {
	// Path 0-1-2-3-4-5 with seeds at 0 and 5: nodes split at the middle,
	// the equidistant node 2 (2 hops from 0, 3 from 5)... build explicitly.
	g := NewGraph(6)
	for u := 0; u < 5; u++ {
		if err := g.AddEdge(u, u+1, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	got := NearestSeeds(g, []int{0, 5})
	want := []int{0, 0, 0, 1, 1, 1}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("node %d: owner %d, want %d (full %v)", v, got[v], want[v], got)
		}
	}

	// Equidistant ties break on the lower seed index: node 2 on a path of
	// 5 is 2 hops from both seeds.
	g5 := NewGraph(5)
	for u := 0; u < 4; u++ {
		if err := g5.AddEdge(u, u+1, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	if got := NearestSeeds(g5, []int{4, 0}); got[2] != 0 {
		// seeds[0]=4, seeds[1]=0: node 2 is 2 hops from each; index 0 wins.
		t.Errorf("tie broke to seed index %d, want 0 (full %v)", got[2], got)
	}

	// Unreachable nodes report -1.
	g2 := NewGraph(4)
	if err := g2.AddEdge(0, 1, 0.01); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddEdge(2, 3, 0.01); err != nil {
		t.Fatal(err)
	}
	got = NearestSeeds(g2, []int{0})
	if got[0] != 0 || got[1] != 0 || got[2] != -1 || got[3] != -1 {
		t.Errorf("disconnected ownership = %v", got)
	}
}

func TestDisjointStars(t *testing.T) {
	g, hubs := DisjointStars(3, 5, 0.02)
	if g.Len() != 15 || len(hubs) != 3 {
		t.Fatalf("got %d nodes, %d hubs", g.Len(), len(hubs))
	}
	if g.Connected() {
		t.Error("DisjointStars must not be connected across clusters")
	}
	for c, hub := range hubs {
		if g.Degree(hub) != 4 {
			t.Errorf("hub %d degree = %d, want 4", hub, g.Degree(hub))
		}
		for s := 1; s < 5; s++ {
			v := c*5 + s
			if g.Degree(v) != 1 || !g.HasEdge(hub, v) {
				t.Errorf("spoke %d not a leaf of hub %d", v, hub)
			}
		}
	}
	// Each cluster owns exactly its own nodes under NearestSeeds.
	owners := NearestSeeds(g, hubs)
	for v := 0; v < g.Len(); v++ {
		if owners[v] != v/5 {
			t.Errorf("node %d owned by %d, want %d", v, owners[v], v/5)
		}
	}
}

func TestRegionLatencyBounds(t *testing.T) {
	// Three regions: 0 <-> 1 linked both cheap and dear, region 2 has a
	// single outbound crossing, region 3 fully isolated.
	g := NewGraph(8)
	part := []int{0, 0, 1, 1, 2, 2, 3, 3}
	mustEdge := func(u, v int, l float64) {
		t.Helper()
		if err := g.AddEdge(u, v, l); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(0, 1, 0.010) // intra region 0: must not count
	mustEdge(0, 2, 0.050) // region 0 <-> 1
	mustEdge(1, 3, 0.020) // region 0 <-> 1, cheaper
	mustEdge(4, 2, 0.080) // region 2 <-> 1
	mustEdge(4, 5, 0.001) // intra region 2
	mustEdge(6, 7, 0.003) // intra region 3 (isolated from the rest)
	g.Compact()
	out, in := RegionLatencyBounds(g, part, 4)
	wantOut := []float64{0.020, 0.020, 0.080, math.Inf(1)}
	wantIn := []float64{0.020, 0.020, 0.080, math.Inf(1)}
	for r := range wantOut {
		if out[r] != wantOut[r] {
			t.Errorf("out[%d] = %v, want %v", r, out[r], wantOut[r])
		}
		if in[r] != wantIn[r] {
			t.Errorf("in[%d] = %v, want %v", r, in[r], wantIn[r])
		}
	}
}

func TestRegionLatencyBoundsAsymmetric(t *testing.T) {
	// With only one crossing, both its endpoint regions see it and
	// uninvolved regions stay unbounded.
	g := NewGraph(4)
	part := []int{0, 1, 2, 2}
	if err := g.AddEdge(0, 1, 0.042); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 0.005); err != nil {
		t.Fatal(err)
	}
	out, in := RegionLatencyBounds(g, part, 3)
	if out[0] != 0.042 || in[0] != 0.042 || out[1] != 0.042 || in[1] != 0.042 {
		t.Errorf("regions 0/1 bounds = out %v in %v, want 0.042 everywhere", out[:2], in[:2])
	}
	if !math.IsInf(out[2], 1) || !math.IsInf(in[2], 1) {
		t.Errorf("isolated region bounds = out %v in %v, want +Inf", out[2], in[2])
	}
}
